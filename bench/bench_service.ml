(* Sustained-load service harness (`main.exe service` / `service-matrix`).

   Drives a sharded Service.t the way a serving system sees traffic
   instead of the paper's fixed-op-count microbenchmarks: open- or
   closed-loop arrivals, Zipfian key skew, a read/write/scan/multi mix,
   a warmup window followed by a steady-state measurement window, and
   per-op-class latency quantiles (p50/p99/p999) taken from
   lib/telemetry histograms. The run emits a [hohtx-load/1] JSON
   artifact; `main.exe service-smoke` runs a miniature probe matrix and
   validates the emitted file against the schema (the
   @service-load-smoke alias).

   Clients issue through the service's async [submit]/[await] path with
   a bounded pipeline of outstanding tickets ([pipeline] = 1 degrades to
   synchronous issue), so the pooled configurations are driven the way
   they are meant to be used: many requests in flight per client, the
   shard worker draining them into fused batches. Point requests are
   submitted [Low] priority — they are the sheddable class; multis stay
   synchronous (and are implicitly [High]: 2PC never sheds).

   The probe matrix ([run_matrix]) sweeps the service knobs over one
   workload: caller-runs baseline, +pool, +pool+hotcache, and all-on
   (+slo) under closed loop, then an open-loop pair (baseline vs all-on)
   at a rate set to ~3x the measured baseline capacity, where the
   baseline must blow through the SLO and admission control must keep
   the served p99 under it. Both verdicts are recorded in the document
   and enforced by schema validation — and any failed verdict prints a
   one-line repro command.

   Open-loop latency is coordinated-omission aware: each request has a
   scheduled arrival time on a fixed cadence, and its latency is
   completion minus *scheduled* arrival — a stalled service accumulates
   the backlog delay into every queued request instead of silently
   pausing the clock. Closed-loop measures completion minus issue. *)

open Harness
module Spec = Factories.Spec
module Json = Telemetry.Json
module Hist = Telemetry.Histogram

let schema = "hohtx-load/1"
let default_out = "BENCH_service.json"

type arrival = Open_loop of float  (** target req/s, all threads *) | Closed_loop

type params = {
  spec : Spec.t;  (** per-shard store recipe + shards/fuse knobs *)
  threads : int;
  key_bits : int;
  theta : float;  (** Zipfian skew; 0 = uniform *)
  read_pct : int;
  scan_pct : int;  (** remainder after reads+scans splits insert/remove *)
  multi_pct : int;  (** % of requests issued as cross-shard 2PC multis *)
  batch : int;  (** point ops per request (router batches per shard) *)
  pipeline : int;  (** outstanding async submissions per client; 1 = sync *)
  arrival : arrival;
  warmup_s : float;
  measure_s : float;
  seed : int;
  json_stdout : bool;
  out : string;
}

let scan_count = 16

(* ---- request generation ---- *)

type req = Req_batch of Store.op array | Req_multi of Store.op array

let gen_point zipf rng p =
  let key = Workload.Zipf.draw zipf rng in
  let roll = Workload.Rng.int rng 100 in
  if roll < p.read_pct then Store.Get key
  else if roll < p.read_pct + p.scan_pct then
    Store.Scan { low = key; count = scan_count }
  else if (roll - p.read_pct - p.scan_pct) mod 2 = 0 then Store.Insert key
  else Store.Remove key

let gen_req zipf rng p =
  if Workload.Rng.int rng 100 < p.multi_pct then begin
    (* a two-key transfer-shaped multi: remove one key, insert another —
       routed to (usually) different shards *)
    let k1 = Workload.Zipf.draw zipf rng in
    let k2 = Workload.Zipf.draw zipf rng in
    if k1 = k2 then Req_batch [| Store.Get k1 |]
    else Req_multi [| Store.Remove k1; Store.Insert k2 |]
  end
  else Req_batch (Array.init p.batch (fun _ -> gen_point zipf rng p))

(* ---- load workers ---- *)

type phase = Warmup | Measure | Done

type class_hists = {
  h_get : Hist.t;
  h_scan : Hist.t;
  h_write : Hist.t;
  h_multi : Hist.t;
}

let class_hists () =
  {
    h_get = Hist.create ();
    h_scan = Hist.create ();
    h_write = Hist.create ();
    h_multi = Hist.create ();
  }

let reset_class_hists h =
  Hist.reset h.h_get;
  Hist.reset h.h_scan;
  Hist.reset h.h_write;
  Hist.reset h.h_multi

type worker_out = {
  w_hists : class_hists;
  w_reqs : int;  (** requests served in the measurement window *)
  w_sheds : int;  (** requests shed by admission control in the window *)
  w_multi_aborts : int;
  w_behind_ns : int;  (** open loop: worst lag behind the arrival schedule *)
}

(* One in-flight async submission awaiting redemption. *)
type pending = {
  pd_ticket : Service.ticket;
  pd_ops : Store.op array;
  pd_scheduled : int;
}

let worker ~svc ~p ~zipf ~phase d () =
  Tm.Thread.with_registered (fun tid ->
      let rng = Workload.Rng.create ~seed:p.seed ~thread:(d + 1) in
      let hists = class_hists () in
      let interval_ns =
        match p.arrival with
        | Closed_loop -> 0.
        | Open_loop rate -> float_of_int p.threads /. rate *. 1e9
      in
      let base = Telemetry.now_ns () in
      let i = ref 0 in
      let measured = ref 0 in
      let sheds = ref 0 in
      let multi_aborts = ref 0 in
      let behind = ref 0 in
      let measuring = ref false in
      let record h ~scheduled ~completed =
        if !measuring then Hist.record h (completed - scheduled)
      in
      (* Redeem one pending submission and record its per-op latencies.
         A request whose replies are all [Overload] was shed: it counts
         as shed, not served, and stays out of the latency histograms
         (the controller's whole point is that it never ran). *)
      let redeem pd =
        let replies = Service.await svc pd.pd_ticket in
        let completed = Telemetry.now_ns () in
        let shed = ref (Array.length replies > 0) in
        Array.iter
          (fun (r : Store.reply) ->
            if r.Store.outcome <> Store.Overload then shed := false)
          replies;
        if !shed then begin
          if !measuring then incr sheds
        end
        else begin
          Array.iteri
            (fun j op ->
              ignore replies.(j);
              let h =
                match op with
                | Store.Get _ -> hists.h_get
                | Store.Scan _ -> hists.h_scan
                | Store.Insert _ | Store.Remove _ -> hists.h_write
              in
              record h ~scheduled:pd.pd_scheduled ~completed)
            pd.pd_ops;
          if !measuring then incr measured
        end
      in
      (* FIFO window of outstanding submissions, capped at p.pipeline *)
      let pending = Queue.create () in
      let continue = ref true in
      while !continue do
        (match Atomic.get phase with
        | Warmup -> ()
        | Measure ->
            if not !measuring then begin
              (* steady state begins: drop warmup samples *)
              reset_class_hists hists;
              measured := 0;
              sheds := 0;
              multi_aborts := 0;
              measuring := true
            end
        | Done -> continue := false);
        if !continue then begin
          let scheduled =
            match p.arrival with
            | Closed_loop -> Telemetry.now_ns ()
            | Open_loop _ ->
                let s = base + int_of_float (float_of_int !i *. interval_ns) in
                let now = Telemetry.now_ns () in
                if now < s then
                  (* ahead of schedule: spin down to the arrival tick *)
                  while Telemetry.now_ns () < s do
                    Domain.cpu_relax ()
                  done
                else begin
                  if now - s > !behind then behind := now - s;
                  (* feed the service's admission controller the lag *)
                  Service.note_lag svc (now - s)
                end;
                s
          in
          (match gen_req zipf rng p with
          | Req_batch ops ->
              while Queue.length pending >= p.pipeline do
                redeem (Queue.pop pending)
              done;
              let tk =
                Service.submit svc ~thread:tid ~priority:Service.Low ops
              in
              Queue.push { pd_ticket = tk; pd_ops = ops; pd_scheduled = scheduled }
                pending
          | Req_multi ops -> (
              (* multis stay synchronous: 2PC freezes its shards with
                 exclusive gates, so a client keeps none of its own point
                 traffic queued behind a multi it has yet to redeem *)
              let r = Service.multi svc ~thread:tid ops in
              let completed = Telemetry.now_ns () in
              record hists.h_multi ~scheduled ~completed;
              if !measuring then incr measured;
              match r with
              | Service.Aborted _ -> if !measuring then incr multi_aborts
              | Service.Committed _ -> ()));
          incr i
        end
      done;
      while not (Queue.is_empty pending) do
        redeem (Queue.pop pending)
      done;
      Service.finalize_thread svc ~thread:tid;
      {
        w_hists = hists;
        w_reqs = !measured;
        w_sheds = !sheds;
        w_multi_aborts = !multi_aborts;
        w_behind_ns = !behind;
      })

(* ---- serializability probe ----

   A short fixed-op-count segment with full logging: every point op and
   every multi sub-op is logged with its commit stamp, then the combined
   cross-shard history must replay under Serial_check. This is the
   "2PC over per-shard transactions stays serializable" acceptance check,
   run against the same service instance shape as the load loop. *)

let verify_probe ~p ~threads ~ops_per_thread =
  let svc = Service.create p.spec in
  let tid0 = Tm.Thread.id () in
  let key_range = 1 lsl p.key_bits in
  let initial = List.init (key_range / 2) (fun i -> (2 * i) + 1) in
  List.iter
    (fun k -> ignore (Service.exec svc ~thread:tid0 (Store.Insert k)))
    initial;
  let logs = Array.make threads [] in
  let barrier = Atomic.make threads in
  let body d () =
    Tm.Thread.with_registered (fun tid ->
        let rng = Workload.Rng.create ~seed:(p.seed + 17) ~thread:(d + 1) in
        let log = ref [] in
        let log_reply op key (r : Store.reply) =
          log :=
            {
              Serial_check.op;
              key;
              result = Store.positive r.Store.outcome;
              earliest = r.Store.earliest;
              stamp = r.Store.stamp;
            }
            :: !log
        in
        Atomic.decr barrier;
        while Atomic.get barrier > 0 do
          Domain.cpu_relax ()
        done;
        for _ = 1 to ops_per_thread do
          let k1 = 1 + Workload.Rng.int rng key_range in
          let k2 = 1 + Workload.Rng.int rng key_range in
          match Workload.Rng.int rng 4 with
          | 0 when k1 <> k2 -> (
              (* cross-shard transfer: both sub-ops logged at their own
                 per-shard commit stamps *)
              match
                Service.multi svc ~thread:tid
                  [| Store.Remove k1; Store.Insert k2 |]
              with
              | Service.Committed rs ->
                  log_reply Workload.Remove k1 rs.(0);
                  log_reply Workload.Insert k2 rs.(1)
              | Service.Aborted _ -> ())
          | 1 ->
              log_reply Workload.Insert k1
                (Service.exec svc ~thread:tid (Store.Insert k1))
          | 2 ->
              log_reply Workload.Remove k1
                (Service.exec svc ~thread:tid (Store.Remove k1))
          | _ ->
              log_reply Workload.Lookup k1
                (Service.exec svc ~thread:tid (Store.Get k1))
        done;
        Service.finalize_thread svc ~thread:tid;
        logs.(d) <- List.rev !log)
  in
  let domains = List.init threads (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join domains;
  Service.shutdown svc;
  Service.drain svc;
  let ops = Array.fold_left (fun a l -> a + List.length l) 0 logs in
  let verdict =
    match Service.check svc with
    | Error _ as e -> e
    | Ok () ->
        Serial_check.check ~initial
          (Array.to_list (Array.map Array.of_list logs))
  in
  (ops, verdict)

(* ---- report ---- *)

let quantiles_json name h =
  Json.Obj
    [
      ("class", Json.String name);
      ("count", Json.Int (Hist.count h));
      ("mean_ns", Json.Float (if Hist.is_empty h then 0. else Hist.mean h));
      ("p50_ns", Json.Int (Hist.quantile h 0.5));
      ("p99_ns", Json.Int (Hist.quantile h 0.99));
      ("p999_ns", Json.Int (Hist.quantile h 0.999));
      ("max_ns", Json.Int (Hist.max_value h));
    ]

type load_out = {
  l_svc : Service.t;
  l_measured_s : float;
  l_hists : class_hists;
  l_reqs : int;
  l_sheds : int;
  l_multi_aborts : int;
  l_behind_ns : int;
  l_qdepth : Hist.t;  (** sampled total queue depth over the window *)
  l_hit_rate : float;
  l_check : (unit, string) result;
}

let run_load p =
  let svc = Service.create p.spec in
  let tid = Tm.Thread.id () in
  let key_range = 1 lsl p.key_bits in
  (* 50% prefill, odd keys: inserts and removes both start with work *)
  for i = 0 to (key_range / 2) - 1 do
    ignore (Service.exec svc ~thread:tid (Store.Insert ((2 * i) + 1)))
  done;
  let zipf = Workload.Zipf.create ~seed:p.seed ~theta:p.theta key_range in
  let phase = Atomic.make Warmup in
  let domains =
    List.init p.threads (fun d ->
        Domain.spawn (worker ~svc ~p ~zipf ~phase d))
  in
  Unix.sleepf p.warmup_s;
  Atomic.set phase Measure;
  let t0 = Telemetry.now_ns () in
  (* sample the pool's total queue depth through the window (~1ms grain)
     instead of sleeping blind: the report carries depth percentiles *)
  let qdepth = Hist.create () in
  let deadline = t0 + int_of_float (p.measure_s *. 1e9) in
  while Telemetry.now_ns () < deadline do
    Hist.record qdepth (Service.queued svc);
    Unix.sleepf 0.001
  done;
  Atomic.set phase Done;
  let t1 = Telemetry.now_ns () in
  let outs = List.map Domain.join domains in
  Service.shutdown svc;
  Service.drain svc;
  let measured_s = float_of_int (t1 - t0) /. 1e9 in
  let merged = class_hists () in
  List.iter
    (fun o ->
      Hist.merge ~into:merged.h_get o.w_hists.h_get;
      Hist.merge ~into:merged.h_scan o.w_hists.h_scan;
      Hist.merge ~into:merged.h_write o.w_hists.h_write;
      Hist.merge ~into:merged.h_multi o.w_hists.h_multi)
    outs;
  {
    l_svc = svc;
    l_measured_s = measured_s;
    l_hists = merged;
    l_reqs = List.fold_left (fun a o -> a + o.w_reqs) 0 outs;
    l_sheds = List.fold_left (fun a o -> a + o.w_sheds) 0 outs;
    l_multi_aborts = List.fold_left (fun a o -> a + o.w_multi_aborts) 0 outs;
    l_behind_ns = List.fold_left (fun a o -> max a o.w_behind_ns) 0 outs;
    l_qdepth = qdepth;
    l_hit_rate = Service.cache_hit_rate svc;
    l_check = Service.check svc;
  }

let counter_of counters name =
  Option.value ~default:0 (List.assoc_opt name counters)

let report p ~mode =
  let o = run_load p in
  let probe_ops, probe_verdict =
    verify_probe ~p ~threads:(min p.threads 4) ~ops_per_thread:400
  in
  let counters = Service.counters o.l_svc in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("bench", Json.String "service");
      ("mode", Json.String mode);
      ("label", Json.String (Service.label o.l_svc));
      ("spec", Spec.to_json p.spec);
      ("shards", Json.Int (Service.shards o.l_svc));
      ("threads", Json.Int p.threads);
      ( "arrival",
        Json.String
          (match p.arrival with Open_loop _ -> "open" | Closed_loop -> "closed")
      );
      ( "target_rate",
        Json.Float
          (match p.arrival with Open_loop r -> r | Closed_loop -> 0.) );
      ("theta", Json.Float p.theta);
      ("key_bits", Json.Int p.key_bits);
      ( "mix",
        Json.Obj
          [
            ("read_pct", Json.Int p.read_pct);
            ("scan_pct", Json.Int p.scan_pct);
            ("multi_pct", Json.Int p.multi_pct);
            ("batch", Json.Int p.batch);
          ] );
      ("pipeline", Json.Int p.pipeline);
      ("warmup_s", Json.Float p.warmup_s);
      ("measure_s", Json.Float o.l_measured_s);
      ("requests", Json.Int o.l_reqs);
      ("throughput", Json.Float (float_of_int o.l_reqs /. o.l_measured_s));
      ("multi_aborts", Json.Int o.l_multi_aborts);
      ("max_schedule_lag_ns", Json.Int o.l_behind_ns);
      ( "queue_depth",
        Json.Obj
          [
            ("samples", Json.Int (Hist.count o.l_qdepth));
            ("p50", Json.Int (Hist.quantile o.l_qdepth 0.5));
            ("p99", Json.Int (Hist.quantile o.l_qdepth 0.99));
            ("max", Json.Int (Hist.max_value o.l_qdepth));
          ] );
      ( "cache",
        Json.Obj
          [
            ("hit_rate", Json.Float o.l_hit_rate);
            ("hits", Json.Int (counter_of counters "cache_hits"));
            ("misses", Json.Int (counter_of counters "cache_misses"));
            ( "invalidations",
              Json.Int (counter_of counters "cache_invalidations") );
          ] );
      ( "sheds",
        Json.Obj
          [
            ("low", Json.Int (counter_of counters "shed_low"));
            ("high", Json.Int (counter_of counters "shed_high"));
            ("deferred_high", Json.Int (counter_of counters "deferred_high"));
            ("shed_requests", Json.Int o.l_sheds);
          ] );
      ( "classes",
        Json.List
          [
            quantiles_json "get" o.l_hists.h_get;
            quantiles_json "scan" o.l_hists.h_scan;
            quantiles_json "write" o.l_hists.h_write;
            quantiles_json "multi" o.l_hists.h_multi;
          ] );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters) );
      ( "service_check",
        Json.String (match o.l_check with Ok () -> "ok" | Error e -> e) );
      ( "serial_check",
        Json.Obj
          [
            ("ops", Json.Int probe_ops);
            ("passed", Json.Bool (probe_verdict = Ok ()));
            ( "verdict",
              Json.String
                (match probe_verdict with Ok () -> "ok" | Error e -> e) );
          ] );
    ]

(* ---- schema validation ---- *)

let validate js =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let field name conv o =
    match Option.bind (Json.member name o) conv with
    | Some v -> Ok v
    | None -> err "missing or ill-typed field %S" name
  in
  let* s = field "schema" Json.to_string_opt js in
  let* () = if s = schema then Ok () else err "schema %S, wanted %S" s schema in
  let* _ = field "bench" Json.to_string_opt js in
  let* _ = field "mode" Json.to_string_opt js in
  let* label = field "label" Json.to_string_opt js in
  let* spec_js = field "spec" Option.some js in
  let* spec =
    match Spec.of_json spec_js with
    | Ok sp -> Ok sp
    | Error e -> err "embedded spec: %s" e
  in
  let* shards = field "shards" Json.to_int js in
  let* () = if shards >= 1 then Ok () else err "shards < 1" in
  let* () =
    let expect = Spec.label { spec with Spec.shards = Some shards } in
    if String.equal label expect then Ok ()
    else err "label %S does not match spec label %S" label expect
  in
  let* threads = field "threads" Json.to_int js in
  let* () = if threads >= 1 then Ok () else err "threads < 1" in
  let* arrival = field "arrival" Json.to_string_opt js in
  let* () =
    if arrival = "open" || arrival = "closed" then Ok ()
    else err "arrival %S" arrival
  in
  let* theta = field "theta" Json.to_float js in
  let* () = if theta >= 0. then Ok () else err "negative theta" in
  let* measure = field "measure_s" Json.to_float js in
  let* () = if measure > 0. then Ok () else err "measure_s <= 0" in
  let* reqs = field "requests" Json.to_int js in
  let* () = if reqs > 0 then Ok () else err "no measured requests" in
  let* tput = field "throughput" Json.to_float js in
  let* () = if tput > 0. then Ok () else err "throughput <= 0" in
  let* classes = field "classes" Json.to_list js in
  let* () =
    let names =
      List.filter_map
        (fun c -> Option.bind (Json.member "class" c) Json.to_string_opt)
        classes
    in
    if List.sort compare names = [ "get"; "multi"; "scan"; "write" ] then Ok ()
    else err "classes must be exactly get/scan/write/multi"
  in
  let* () =
    List.fold_left
      (fun acc c ->
        let* () = acc in
        let* name = field "class" Json.to_string_opt c in
        let* count = field "count" Json.to_int c in
        let* p50 = field "p50_ns" Json.to_int c in
        let* p99 = field "p99_ns" Json.to_int c in
        let* p999 = field "p999_ns" Json.to_int c in
        let* mx = field "max_ns" Json.to_int c in
        let* _ = field "mean_ns" Json.to_float c in
        if count < 0 then err "class %s: negative count" name
        else if count > 0 && not (p50 <= p99 && p99 <= p999 && p999 <= mx)
        then err "class %s: quantiles not monotone" name
        else Ok ())
      (Ok ()) classes
  in
  let* pipeline = field "pipeline" Json.to_int js in
  let* () = if pipeline >= 1 then Ok () else err "pipeline < 1" in
  let* qd = field "queue_depth" Option.some js in
  let* qd_samples = field "samples" Json.to_int qd in
  let* qd50 = field "p50" Json.to_int qd in
  let* qd99 = field "p99" Json.to_int qd in
  let* qdmax = field "max" Json.to_int qd in
  let* () =
    if qd_samples < 0 then err "queue_depth: negative sample count"
    else if qd_samples > 0 && not (qd50 <= qd99 && qd99 <= qdmax) then
      err "queue_depth: percentiles not monotone"
    else Ok ()
  in
  let* cache = field "cache" Option.some js in
  let* hr = field "hit_rate" Json.to_float cache in
  let* () =
    if hr >= 0. && hr <= 1. then Ok () else err "cache hit_rate %.3f" hr
  in
  let* hits = field "hits" Json.to_int cache in
  let* misses = field "misses" Json.to_int cache in
  let* () =
    if hits >= 0 && misses >= 0 then Ok () else err "negative cache counters"
  in
  let* () =
    (* the embedded spec says whether the cache was on; hits without a
       cache mean the report and the spec disagree *)
    if hits + misses > 0 && spec.Spec.hotcache <> Some true then
      err "cache traffic reported but spec has no hotcache"
    else Ok ()
  in
  let* sheds = field "sheds" Option.some js in
  let* shed_low = field "low" Json.to_int sheds in
  let* shed_high = field "high" Json.to_int sheds in
  let* shed_reqs = field "shed_requests" Json.to_int sheds in
  let* _ = field "deferred_high" Json.to_int sheds in
  let* () =
    if shed_low < 0 || shed_high < 0 || shed_reqs < 0 then
      err "negative shed counters"
    else if shed_high > 0 then err "high-priority requests were shed"
    else if shed_low > 0 && spec.Spec.slo_us = None then
      err "sheds reported but spec has no SLO"
    else Ok ()
  in
  let* sc = field "service_check" Json.to_string_opt js in
  let* () = if sc = "ok" then Ok () else err "service_check: %s" sc in
  let* probe = field "serial_check" Option.some js in
  let* probe_ops = field "ops" Json.to_int probe in
  let* () = if probe_ops > 0 then Ok () else err "serial_check ran no ops" in
  let* passed = field "passed" Json.to_bool probe in
  if passed then Ok ()
  else
    let* v = field "verdict" Json.to_string_opt probe in
    err "serial_check failed: %s" v

(* ---- entry points ---- *)

let write_report ~out js =
  let oc = open_out out in
  output_string oc (Json.to_string js);
  output_char oc '\n';
  close_out oc

let summarize js =
  let quantile cls q =
    match Json.member "classes" js with
    | Some (Json.List cs) -> (
        match
          List.find_opt
            (fun c -> Json.member "class" c = Some (Json.String cls))
            cs
        with
        | Some c -> (
            match Option.bind (Json.member q c) Json.to_int with
            | Some v -> Printf.sprintf "%.1fus" (float_of_int v /. 1e3)
            | None -> "-")
        | None -> "-")
    | _ -> "-"
  in
  let str name =
    match Option.bind (Json.member name js) Json.to_string_opt with
    | Some s -> s
    | None -> "-"
  in
  let flt name =
    match Option.bind (Json.member name js) Json.to_float with
    | Some f -> f
    | None -> 0.
  in
  Printf.printf
    "service %s (%s arrival): %.0f req/s | get p50 %s p99 %s p999 %s | write \
     p50 %s p99 %s | multi p99 %s | checks %s/%s\n\
     %!"
    (str "label") (str "arrival") (flt "throughput") (quantile "get" "p50_ns")
    (quantile "get" "p99_ns")
    (quantile "get" "p999_ns")
    (quantile "write" "p50_ns")
    (quantile "write" "p99_ns")
    (quantile "multi" "p99_ns")
    (str "service_check")
    (match Json.member "serial_check" js with
    | Some probe -> (
        match Option.bind (Json.member "passed" probe) Json.to_bool with
        | Some true -> "serial-ok"
        | _ -> "serial-FAIL")
    | None -> "-")

(* One line that re-runs this exact configuration, printed whenever a
   verdict or validation fails so the failure is reproducible without
   archaeology. *)
let repro_line p =
  Printf.sprintf
    "repro: dune exec bench/main.exe -- service --spec '%s' --threads %d \
     --theta %.2f --key-bits %d --seed %d --pipeline %d%s --duration %.2f"
    (Json.to_string (Spec.to_json p.spec))
    p.threads p.theta p.key_bits p.seed p.pipeline
    (match p.arrival with
    | Open_loop r -> Printf.sprintf " --rate %.0f" r
    | Closed_loop -> "")
    p.measure_s

let default_params =
  {
    spec =
      Spec.v ~window:8 ~shards:4 ~fuse:true Spec.Slist
        (Structs.Mode.Rr_kind (module Rr.V));
    threads = 4;
    key_bits = 10;
    theta = 0.99;
    read_pct = 70;
    scan_pct = 5;
    multi_pct = 5;
    batch = 4;
    pipeline = 1;
    arrival = Closed_loop;
    warmup_s = 1.0;
    measure_s = 3.0;
    seed = 0x10ad;
    json_stdout = false;
    out = default_out;
  }

let run p ~mode =
  Printf.printf
    "service load: %s, %d threads, %d shards, theta %.2f, %s arrival, warmup \
     %.1fs + measure %.1fs -> %s\n\
     %!"
    (Spec.label p.spec) p.threads
    (Option.value p.spec.Spec.shards ~default:1)
    p.theta
    (match p.arrival with Open_loop r -> Printf.sprintf "open(%.0f/s)" r
    | Closed_loop -> "closed")
    p.warmup_s p.measure_s p.out;
  let js = report p ~mode in
  write_report ~out:p.out js;
  if p.json_stdout then print_endline (Json.to_string js);
  summarize js;
  (match validate js with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "!! %s fails %s validation: %s\n%s\n%!" p.out schema e
        (repro_line p));
  Printf.printf "wrote %s\n%!" p.out

(* ---- probe matrix ----

   The service-knob sweep over one workload: which layer buys what, on
   the record. Closed-loop legs measure capacity (base, +pool,
   +pool+hotcache, all-on); then the base capacity sets an open-loop
   rate (~3x) that the baseline cannot serve, and the open pair (base vs
   all-on) tests admission control: the baseline must blow through the
   SLO, all-on must shed enough low-priority traffic to keep the served
   get p99 under it. *)

let matrix_slo_us = 20_000

type matrix_cfg = { m_name : string; m_params : params }

let matrix_spec ?pool ?hotcache ?slo_us base_spec =
  { base_spec with Spec.pool; hotcache; slo_us }

let matrix_configs ~p ~rate =
  let closed name spec pipeline =
    { m_name = name; m_params = { p with spec; pipeline } }
  in
  let open_ name spec pipeline =
    {
      m_name = name;
      m_params = { p with spec; pipeline; arrival = Open_loop rate };
    }
  in
  let base = p.spec in
  let all_on =
    matrix_spec ~pool:true ~hotcache:true ~slo_us:matrix_slo_us base
  in
  [
    closed "base" base 1;
    closed "pool" (matrix_spec ~pool:true base) 16;
    closed "pool_cache" (matrix_spec ~pool:true ~hotcache:true base) 16;
    closed "all_on" all_on 16;
    open_ "open_base" base 1;
    open_ "open_all_on" all_on 16;
  ]

let doc_float name js =
  Option.value ~default:0. (Option.bind (Json.member name js) Json.to_float)

let doc_get_p99 js =
  match Json.member "classes" js with
  | Some (Json.List cs) -> (
      match
        List.find_opt
          (fun c -> Json.member "class" c = Some (Json.String "get"))
          cs
      with
      | Some c ->
          Option.value ~default:0 (Option.bind (Json.member "p99_ns" c) Json.to_int)
      | None -> 0)
  | _ -> 0

let matrix_report p ~mode =
  (* the base closed-loop run comes first: its capacity calibrates the
     open-loop overload rate *)
  let base_cfg = List.hd (matrix_configs ~p ~rate:1.) in
  Printf.printf "matrix[base]: measuring caller-runs capacity...\n%!";
  let base_doc = report base_cfg.m_params ~mode in
  let base_tput = doc_float "throughput" base_doc in
  (* 2x the caller-runs capacity: far past what the baseline can serve
     (its open-loop lag must blow the SLO), while leaving the load
     generator headroom — at 2.5x+ the generator itself cannot hold the
     cadence even when every request is shed, and the measured lag stops
     being the service's *)
  let rate = Float.max 2_000. (2.0 *. base_tput) in
  let cfgs = List.tl (matrix_configs ~p ~rate) in
  let docs =
    (base_cfg, base_doc)
    :: List.map
         (fun c ->
           Printf.printf "matrix[%s]: running...\n%!" c.m_name;
           (c, report c.m_params ~mode))
         cfgs
  in
  let tagged =
    List.map
      (fun (c, doc) ->
        match doc with
        | Json.Obj fields -> (c, Json.Obj (("config", Json.String c.m_name) :: fields))
        | doc -> (c, doc))
      docs
  in
  let find name =
    match List.find_opt (fun (c, _) -> c.m_name = name) tagged with
    | Some (_, doc) -> doc
    | None -> Json.Obj []
  in
  let tput name = doc_float "throughput" (find name) in
  let slo_ns = matrix_slo_us * 1_000 in
  let open_base_p99 = doc_get_p99 (find "open_base") in
  let open_all_on_p99 = doc_get_p99 (find "open_all_on") in
  let throughput_ok = tput "pool_cache" >= tput "base" in
  let base_violates = open_base_p99 > slo_ns in
  let slo_ok = base_violates && open_all_on_p99 <= slo_ns in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("bench", Json.String "service");
      ("mode", Json.String ("matrix-" ^ mode));
      ("threads", Json.Int p.threads);
      ("theta", Json.Float p.theta);
      ("runs", Json.List (List.map snd tagged));
      ( "matrix",
        Json.Obj
          [
            ("slo_us", Json.Int matrix_slo_us);
            ("open_rate", Json.Float rate);
            ("throughput_base", Json.Float (tput "base"));
            ("throughput_pool", Json.Float (tput "pool"));
            ("throughput_pool_cache", Json.Float (tput "pool_cache"));
            ("throughput_all_on", Json.Float (tput "all_on"));
            ("throughput_ok", Json.Bool throughput_ok);
            ("open_base_get_p99_ns", Json.Int open_base_p99);
            ("open_all_on_get_p99_ns", Json.Int open_all_on_p99);
            ("open_base_violates_slo", Json.Bool base_violates);
            ("slo_ok", Json.Bool slo_ok);
          ] );
    ]

(* Validate a matrix document: every embedded run must satisfy the
   hohtx-load/1 run schema, and both acceptance verdicts must hold. *)
let validate_matrix js =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* () =
    match Option.bind (Json.member "schema" js) Json.to_string_opt with
    | Some s when s = schema -> Ok ()
    | Some s -> err "schema %S, wanted %S" s schema
    | None -> err "missing schema"
  in
  let* runs =
    match Option.bind (Json.member "runs" js) Json.to_list with
    | Some (_ :: _ as rs) -> Ok rs
    | _ -> err "missing or empty runs"
  in
  let* () =
    List.fold_left
      (fun acc r ->
        let* () = acc in
        let name =
          match Option.bind (Json.member "config" r) Json.to_string_opt with
          | Some n -> n
          | None -> "?"
        in
        match validate r with
        | Ok () -> Ok ()
        | Error e -> err "run %s: %s" name e)
      (Ok ()) runs
  in
  let* m =
    match Json.member "matrix" js with
    | Some m -> Ok m
    | None -> err "missing matrix verdicts"
  in
  let bool name =
    Option.value ~default:false (Option.bind (Json.member name m) Json.to_bool)
  in
  let* () =
    if bool "throughput_ok" then Ok ()
    else
      err
        "pooled+cached throughput (%.0f req/s) below caller-runs baseline \
         (%.0f req/s)"
        (doc_float "throughput_pool_cache" m)
        (doc_float "throughput_base" m)
  in
  let* () =
    if not (bool "open_base_violates_slo") then
      err
        "open-loop baseline did not violate the SLO — the overload rate is \
         miscalibrated, the shedding leg proves nothing"
    else Ok ()
  in
  if bool "slo_ok" then Ok ()
  else
    err "all-on open-loop get p99 exceeds the %dus SLO despite admission control"
      matrix_slo_us

let summarize_matrix js =
  (match Json.member "runs" js with
  | Some (Json.List rs) ->
      List.iter
        (fun r ->
          (match Option.bind (Json.member "config" r) Json.to_string_opt with
          | Some n -> Printf.printf "[%-12s] " n
          | None -> ());
          summarize r)
        rs
  | _ -> ());
  match Json.member "matrix" js with
  | Some m ->
      let b name =
        match Option.bind (Json.member name m) Json.to_bool with
        | Some true -> "ok"
        | _ -> "FAIL"
      in
      Printf.printf
        "matrix: throughput base %.0f | pool %.0f | pool+cache %.0f | all-on \
         %.0f -> %s\n\
         matrix: open@%.0f/s get p99 base %.1fms vs all-on %.1fms (slo %dms) \
         -> %s\n\
         %!"
        (doc_float "throughput_base" m)
        (doc_float "throughput_pool" m)
        (doc_float "throughput_pool_cache" m)
        (doc_float "throughput_all_on" m)
        (b "throughput_ok") (doc_float "open_rate" m)
        (float_of_int
           (Option.value ~default:0
              (Option.bind (Json.member "open_base_get_p99_ns" m) Json.to_int))
        /. 1e6)
        (float_of_int
           (Option.value ~default:0
              (Option.bind
                 (Json.member "open_all_on_get_p99_ns" m)
                 Json.to_int))
        /. 1e6)
        (matrix_slo_us / 1000) (b "slo_ok")
  | None -> ()

(* Print a repro line per matrix config plus the one-shot matrix command
   itself; called on any failed verdict. *)
let matrix_repro ~p js =
  prerr_endline "repro: dune exec bench/main.exe -- service-matrix";
  let rate = doc_float "open_rate" (Option.value ~default:(Json.Obj []) (Json.member "matrix" js)) in
  List.iter
    (fun c -> prerr_endline ("  [" ^ c.m_name ^ "] " ^ repro_line c.m_params))
    (matrix_configs ~p ~rate)

let run_matrix p ~mode =
  Printf.printf
    "service probe matrix: %s base, %d threads, theta %.2f, warmup %.1fs + \
     measure %.1fs per config -> %s\n\
     %!"
    (Spec.label p.spec) p.threads p.theta p.warmup_s p.measure_s p.out;
  let js = matrix_report p ~mode in
  write_report ~out:p.out js;
  if p.json_stdout then print_endline (Json.to_string js);
  summarize_matrix js;
  (match validate_matrix js with
  | Ok () -> Printf.printf "matrix verdicts OK\n%!"
  | Error e ->
      Printf.eprintf "!! %s fails %s matrix validation: %s\n%!" p.out schema e;
      matrix_repro ~p js);
  Printf.printf "wrote %s\n%!" p.out

let matrix_params ~threads ~measure_s =
  {
    default_params with
    threads;
    key_bits = 8;
    theta = 1.1;
    read_pct = 96;
    scan_pct = 0;
    multi_pct = 2;
    batch = 1;
    warmup_s = Float.min 0.5 measure_s;
    measure_s;
  }

let smoke () =
  let p = { (matrix_params ~threads:2 ~measure_s:0.4) with warmup_s = 0.2 } in
  (* The SLO legs measure absolute wall-clock lag; concurrent test
     processes on a small box can blow one measurement with a preemption
     burst. One fresh re-measurement before declaring failure — real
     regressions repeat, scheduling noise does not. *)
  let attempts = 2 in
  let attempt_once () =
    let js = matrix_report p ~mode:"smoke" in
    write_report ~out:p.out js;
    let ic = open_in p.out in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    let verdict =
      match Json.of_string text with
      | Error e -> Error (Printf.sprintf "emitted JSON does not parse: %s" e)
      | Ok parsed ->
          if not (Json.equal parsed js) then
            Error "JSON round-trip changed the value"
          else validate_matrix parsed
    in
    (js, verdict)
  in
  let rec go attempt =
    match attempt_once () with
    | js, Ok () ->
        summarize_matrix js;
        Printf.printf "service-smoke OK: %s matrix validates against %s\n"
          p.out schema
    | _, Error m when attempt < attempts ->
        Printf.eprintf
          "service-smoke: %s -- retrying (%d/%d), suspecting scheduling \
           noise\n\
           %!"
          m (attempt + 1) attempts;
        go (attempt + 1)
    | js, Error m ->
        prerr_endline ("service-smoke: " ^ m);
        matrix_repro ~p js;
        exit 1
  in
  go 1
