(* Sustained-load service harness (`main.exe service`).

   Drives a sharded Service.t the way a serving system sees traffic
   instead of the paper's fixed-op-count microbenchmarks: open- or
   closed-loop arrivals, Zipfian key skew, a read/write/scan/multi mix,
   a warmup window followed by a steady-state measurement window, and
   per-op-class latency quantiles (p50/p99/p999) taken from
   lib/telemetry histograms. The run emits a [hohtx-load/1] JSON
   artifact; `main.exe service-smoke` runs a miniature and validates the
   emitted file against the schema (the @service-load-smoke alias).

   Open-loop latency is coordinated-omission aware: each request has a
   scheduled arrival time on a fixed cadence, and its latency is
   completion minus *scheduled* arrival — a stalled service accumulates
   the backlog delay into every queued request instead of silently
   pausing the clock. Closed-loop measures completion minus issue. *)

open Harness
module Spec = Factories.Spec
module Json = Telemetry.Json
module Hist = Telemetry.Histogram

let schema = "hohtx-load/1"
let default_out = "BENCH_service.json"

type arrival = Open_loop of float  (** target req/s, all threads *) | Closed_loop

type params = {
  spec : Spec.t;  (** per-shard store recipe + shards/fuse knobs *)
  threads : int;
  key_bits : int;
  theta : float;  (** Zipfian skew; 0 = uniform *)
  read_pct : int;
  scan_pct : int;  (** remainder after reads+scans splits insert/remove *)
  multi_pct : int;  (** % of requests issued as cross-shard 2PC multis *)
  batch : int;  (** point ops per request (router batches per shard) *)
  arrival : arrival;
  warmup_s : float;
  measure_s : float;
  seed : int;
  json_stdout : bool;
  out : string;
}

let scan_count = 16

(* ---- request generation ---- *)

type req = Req_batch of Store.op array | Req_multi of Store.op array

let gen_point zipf rng p =
  let key = Workload.Zipf.draw zipf rng in
  let roll = Workload.Rng.int rng 100 in
  if roll < p.read_pct then Store.Get key
  else if roll < p.read_pct + p.scan_pct then
    Store.Scan { low = key; count = scan_count }
  else if (roll - p.read_pct - p.scan_pct) mod 2 = 0 then Store.Insert key
  else Store.Remove key

let gen_req zipf rng p =
  if Workload.Rng.int rng 100 < p.multi_pct then begin
    (* a two-key transfer-shaped multi: remove one key, insert another —
       routed to (usually) different shards *)
    let k1 = Workload.Zipf.draw zipf rng in
    let k2 = Workload.Zipf.draw zipf rng in
    if k1 = k2 then Req_batch [| Store.Get k1 |]
    else Req_multi [| Store.Remove k1; Store.Insert k2 |]
  end
  else Req_batch (Array.init p.batch (fun _ -> gen_point zipf rng p))

(* ---- load workers ---- *)

type phase = Warmup | Measure | Done

type class_hists = {
  h_get : Hist.t;
  h_scan : Hist.t;
  h_write : Hist.t;
  h_multi : Hist.t;
}

let class_hists () =
  {
    h_get = Hist.create ();
    h_scan = Hist.create ();
    h_write = Hist.create ();
    h_multi = Hist.create ();
  }

let reset_class_hists h =
  Hist.reset h.h_get;
  Hist.reset h.h_scan;
  Hist.reset h.h_write;
  Hist.reset h.h_multi

type worker_out = {
  w_hists : class_hists;
  w_reqs : int;  (** requests completed in the measurement window *)
  w_multi_aborts : int;
  w_behind_ns : int;  (** open loop: worst lag behind the arrival schedule *)
}

let worker ~svc ~p ~zipf ~phase d () =
  Tm.Thread.with_registered (fun tid ->
      let rng = Workload.Rng.create ~seed:p.seed ~thread:(d + 1) in
      let hists = class_hists () in
      let interval_ns =
        match p.arrival with
        | Closed_loop -> 0.
        | Open_loop rate -> float_of_int p.threads /. rate *. 1e9
      in
      let base = Telemetry.now_ns () in
      let i = ref 0 in
      let measured = ref 0 in
      let multi_aborts = ref 0 in
      let behind = ref 0 in
      let measuring = ref false in
      let record h ~scheduled ~completed =
        if !measuring then Hist.record h (completed - scheduled)
      in
      let continue = ref true in
      while !continue do
        (match Atomic.get phase with
        | Warmup -> ()
        | Measure ->
            if not !measuring then begin
              (* steady state begins: drop warmup samples *)
              reset_class_hists hists;
              measured := 0;
              multi_aborts := 0;
              measuring := true
            end
        | Done -> continue := false);
        if !continue then begin
          let scheduled =
            match p.arrival with
            | Closed_loop -> Telemetry.now_ns ()
            | Open_loop _ ->
                let s = base + int_of_float (float_of_int !i *. interval_ns) in
                let now = Telemetry.now_ns () in
                if now < s then
                  (* ahead of schedule: spin down to the arrival tick *)
                  while Telemetry.now_ns () < s do
                    Domain.cpu_relax ()
                  done
                else if now - s > !behind then behind := now - s;
                s
          in
          (match gen_req zipf rng p with
          | Req_batch ops ->
              let replies = Service.exec_batch svc ~thread:tid ops in
              let completed = Telemetry.now_ns () in
              Array.iteri
                (fun j op ->
                  ignore replies.(j);
                  let h =
                    match op with
                    | Store.Get _ -> hists.h_get
                    | Store.Scan _ -> hists.h_scan
                    | Store.Insert _ | Store.Remove _ -> hists.h_write
                  in
                  record h ~scheduled ~completed)
                ops
          | Req_multi ops -> (
              let r = Service.multi svc ~thread:tid ops in
              let completed = Telemetry.now_ns () in
              record hists.h_multi ~scheduled ~completed;
              match r with
              | Service.Aborted _ -> if !measuring then incr multi_aborts
              | Service.Committed _ -> ()));
          if !measuring then incr measured;
          incr i
        end
      done;
      Service.finalize_thread svc ~thread:tid;
      {
        w_hists = hists;
        w_reqs = !measured;
        w_multi_aborts = !multi_aborts;
        w_behind_ns = !behind;
      })

(* ---- serializability probe ----

   A short fixed-op-count segment with full logging: every point op and
   every multi sub-op is logged with its commit stamp, then the combined
   cross-shard history must replay under Serial_check. This is the
   "2PC over per-shard transactions stays serializable" acceptance check,
   run against the same service instance shape as the load loop. *)

let verify_probe ~p ~threads ~ops_per_thread =
  let svc = Service.create p.spec in
  let tid0 = Tm.Thread.id () in
  let key_range = 1 lsl p.key_bits in
  let initial = List.init (key_range / 2) (fun i -> (2 * i) + 1) in
  List.iter
    (fun k -> ignore (Service.exec svc ~thread:tid0 (Store.Insert k)))
    initial;
  let logs = Array.make threads [] in
  let barrier = Atomic.make threads in
  let body d () =
    Tm.Thread.with_registered (fun tid ->
        let rng = Workload.Rng.create ~seed:(p.seed + 17) ~thread:(d + 1) in
        let log = ref [] in
        let log_reply op key (r : Store.reply) =
          log :=
            {
              Serial_check.op;
              key;
              result = Store.positive r.Store.outcome;
              earliest = r.Store.earliest;
              stamp = r.Store.stamp;
            }
            :: !log
        in
        Atomic.decr barrier;
        while Atomic.get barrier > 0 do
          Domain.cpu_relax ()
        done;
        for _ = 1 to ops_per_thread do
          let k1 = 1 + Workload.Rng.int rng key_range in
          let k2 = 1 + Workload.Rng.int rng key_range in
          match Workload.Rng.int rng 4 with
          | 0 when k1 <> k2 -> (
              (* cross-shard transfer: both sub-ops logged at their own
                 per-shard commit stamps *)
              match
                Service.multi svc ~thread:tid
                  [| Store.Remove k1; Store.Insert k2 |]
              with
              | Service.Committed rs ->
                  log_reply Workload.Remove k1 rs.(0);
                  log_reply Workload.Insert k2 rs.(1)
              | Service.Aborted _ -> ())
          | 1 ->
              log_reply Workload.Insert k1
                (Service.exec svc ~thread:tid (Store.Insert k1))
          | 2 ->
              log_reply Workload.Remove k1
                (Service.exec svc ~thread:tid (Store.Remove k1))
          | _ ->
              log_reply Workload.Lookup k1
                (Service.exec svc ~thread:tid (Store.Get k1))
        done;
        Service.finalize_thread svc ~thread:tid;
        logs.(d) <- List.rev !log)
  in
  let domains = List.init threads (fun d -> Domain.spawn (body d)) in
  List.iter Domain.join domains;
  Service.drain svc;
  let ops = Array.fold_left (fun a l -> a + List.length l) 0 logs in
  let verdict =
    match Service.check svc with
    | Error _ as e -> e
    | Ok () ->
        Serial_check.check ~initial
          (Array.to_list (Array.map Array.of_list logs))
  in
  (ops, verdict)

(* ---- report ---- *)

let quantiles_json name h =
  Json.Obj
    [
      ("class", Json.String name);
      ("count", Json.Int (Hist.count h));
      ("mean_ns", Json.Float (if Hist.is_empty h then 0. else Hist.mean h));
      ("p50_ns", Json.Int (Hist.quantile h 0.5));
      ("p99_ns", Json.Int (Hist.quantile h 0.99));
      ("p999_ns", Json.Int (Hist.quantile h 0.999));
      ("max_ns", Json.Int (Hist.max_value h));
    ]

let run_load p =
  let svc = Service.create p.spec in
  let tid = Tm.Thread.id () in
  let key_range = 1 lsl p.key_bits in
  (* 50% prefill, odd keys: inserts and removes both start with work *)
  for i = 0 to (key_range / 2) - 1 do
    ignore (Service.exec svc ~thread:tid (Store.Insert ((2 * i) + 1)))
  done;
  let zipf = Workload.Zipf.create ~seed:p.seed ~theta:p.theta key_range in
  let phase = Atomic.make Warmup in
  let domains =
    List.init p.threads (fun d ->
        Domain.spawn (worker ~svc ~p ~zipf ~phase d))
  in
  Unix.sleepf p.warmup_s;
  Atomic.set phase Measure;
  let t0 = Telemetry.now_ns () in
  Unix.sleepf p.measure_s;
  Atomic.set phase Done;
  let t1 = Telemetry.now_ns () in
  let outs = List.map Domain.join domains in
  Service.drain svc;
  let measured_s = float_of_int (t1 - t0) /. 1e9 in
  let merged = class_hists () in
  List.iter
    (fun o ->
      Hist.merge ~into:merged.h_get o.w_hists.h_get;
      Hist.merge ~into:merged.h_scan o.w_hists.h_scan;
      Hist.merge ~into:merged.h_write o.w_hists.h_write;
      Hist.merge ~into:merged.h_multi o.w_hists.h_multi)
    outs;
  let reqs = List.fold_left (fun a o -> a + o.w_reqs) 0 outs in
  let multi_aborts = List.fold_left (fun a o -> a + o.w_multi_aborts) 0 outs in
  let behind = List.fold_left (fun a o -> max a o.w_behind_ns) 0 outs in
  let check = Service.check svc in
  (svc, measured_s, merged, reqs, multi_aborts, behind, check)

let report p ~mode =
  let svc, measured_s, hists, reqs, multi_aborts, behind, check = run_load p in
  let probe_ops, probe_verdict =
    verify_probe ~p ~threads:(min p.threads 4) ~ops_per_thread:400
  in
  let counters = Service.counters svc in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("bench", Json.String "service");
      ("mode", Json.String mode);
      ("label", Json.String (Service.label svc));
      ("spec", Spec.to_json p.spec);
      ("shards", Json.Int (Service.shards svc));
      ("threads", Json.Int p.threads);
      ( "arrival",
        Json.String
          (match p.arrival with Open_loop _ -> "open" | Closed_loop -> "closed")
      );
      ( "target_rate",
        Json.Float
          (match p.arrival with Open_loop r -> r | Closed_loop -> 0.) );
      ("theta", Json.Float p.theta);
      ("key_bits", Json.Int p.key_bits);
      ( "mix",
        Json.Obj
          [
            ("read_pct", Json.Int p.read_pct);
            ("scan_pct", Json.Int p.scan_pct);
            ("multi_pct", Json.Int p.multi_pct);
            ("batch", Json.Int p.batch);
          ] );
      ("warmup_s", Json.Float p.warmup_s);
      ("measure_s", Json.Float measured_s);
      ("requests", Json.Int reqs);
      ("throughput", Json.Float (float_of_int reqs /. measured_s));
      ("multi_aborts", Json.Int multi_aborts);
      ("max_schedule_lag_ns", Json.Int behind);
      ( "classes",
        Json.List
          [
            quantiles_json "get" hists.h_get;
            quantiles_json "scan" hists.h_scan;
            quantiles_json "write" hists.h_write;
            quantiles_json "multi" hists.h_multi;
          ] );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters) );
      ( "service_check",
        Json.String (match check with Ok () -> "ok" | Error e -> e) );
      ( "serial_check",
        Json.Obj
          [
            ("ops", Json.Int probe_ops);
            ("passed", Json.Bool (probe_verdict = Ok ()));
            ( "verdict",
              Json.String
                (match probe_verdict with Ok () -> "ok" | Error e -> e) );
          ] );
    ]

(* ---- schema validation ---- *)

let validate js =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let field name conv o =
    match Option.bind (Json.member name o) conv with
    | Some v -> Ok v
    | None -> err "missing or ill-typed field %S" name
  in
  let* s = field "schema" Json.to_string_opt js in
  let* () = if s = schema then Ok () else err "schema %S, wanted %S" s schema in
  let* _ = field "bench" Json.to_string_opt js in
  let* _ = field "mode" Json.to_string_opt js in
  let* label = field "label" Json.to_string_opt js in
  let* spec_js = field "spec" Option.some js in
  let* spec =
    match Spec.of_json spec_js with
    | Ok sp -> Ok sp
    | Error e -> err "embedded spec: %s" e
  in
  let* shards = field "shards" Json.to_int js in
  let* () = if shards >= 1 then Ok () else err "shards < 1" in
  let* () =
    let expect = Spec.label { spec with Spec.shards = Some shards } in
    if String.equal label expect then Ok ()
    else err "label %S does not match spec label %S" label expect
  in
  let* threads = field "threads" Json.to_int js in
  let* () = if threads >= 1 then Ok () else err "threads < 1" in
  let* arrival = field "arrival" Json.to_string_opt js in
  let* () =
    if arrival = "open" || arrival = "closed" then Ok ()
    else err "arrival %S" arrival
  in
  let* theta = field "theta" Json.to_float js in
  let* () = if theta >= 0. then Ok () else err "negative theta" in
  let* measure = field "measure_s" Json.to_float js in
  let* () = if measure > 0. then Ok () else err "measure_s <= 0" in
  let* reqs = field "requests" Json.to_int js in
  let* () = if reqs > 0 then Ok () else err "no measured requests" in
  let* tput = field "throughput" Json.to_float js in
  let* () = if tput > 0. then Ok () else err "throughput <= 0" in
  let* classes = field "classes" Json.to_list js in
  let* () =
    let names =
      List.filter_map
        (fun c -> Option.bind (Json.member "class" c) Json.to_string_opt)
        classes
    in
    if List.sort compare names = [ "get"; "multi"; "scan"; "write" ] then Ok ()
    else err "classes must be exactly get/scan/write/multi"
  in
  let* () =
    List.fold_left
      (fun acc c ->
        let* () = acc in
        let* name = field "class" Json.to_string_opt c in
        let* count = field "count" Json.to_int c in
        let* p50 = field "p50_ns" Json.to_int c in
        let* p99 = field "p99_ns" Json.to_int c in
        let* p999 = field "p999_ns" Json.to_int c in
        let* mx = field "max_ns" Json.to_int c in
        let* _ = field "mean_ns" Json.to_float c in
        if count < 0 then err "class %s: negative count" name
        else if count > 0 && not (p50 <= p99 && p99 <= p999 && p999 <= mx)
        then err "class %s: quantiles not monotone" name
        else Ok ())
      (Ok ()) classes
  in
  let* sc = field "service_check" Json.to_string_opt js in
  let* () = if sc = "ok" then Ok () else err "service_check: %s" sc in
  let* probe = field "serial_check" Option.some js in
  let* probe_ops = field "ops" Json.to_int probe in
  let* () = if probe_ops > 0 then Ok () else err "serial_check ran no ops" in
  let* passed = field "passed" Json.to_bool probe in
  if passed then Ok ()
  else
    let* v = field "verdict" Json.to_string_opt probe in
    err "serial_check failed: %s" v

(* ---- entry points ---- *)

let write_report ~out js =
  let oc = open_out out in
  output_string oc (Json.to_string js);
  output_char oc '\n';
  close_out oc

let summarize js =
  let quantile cls q =
    match Json.member "classes" js with
    | Some (Json.List cs) -> (
        match
          List.find_opt
            (fun c -> Json.member "class" c = Some (Json.String cls))
            cs
        with
        | Some c -> (
            match Option.bind (Json.member q c) Json.to_int with
            | Some v -> Printf.sprintf "%.1fus" (float_of_int v /. 1e3)
            | None -> "-")
        | None -> "-")
    | _ -> "-"
  in
  let str name =
    match Option.bind (Json.member name js) Json.to_string_opt with
    | Some s -> s
    | None -> "-"
  in
  let flt name =
    match Option.bind (Json.member name js) Json.to_float with
    | Some f -> f
    | None -> 0.
  in
  Printf.printf
    "service %s (%s arrival): %.0f req/s | get p50 %s p99 %s p999 %s | write \
     p50 %s p99 %s | multi p99 %s | checks %s/%s\n\
     %!"
    (str "label") (str "arrival") (flt "throughput") (quantile "get" "p50_ns")
    (quantile "get" "p99_ns")
    (quantile "get" "p999_ns")
    (quantile "write" "p50_ns")
    (quantile "write" "p99_ns")
    (quantile "multi" "p99_ns")
    (str "service_check")
    (match Json.member "serial_check" js with
    | Some probe -> (
        match Option.bind (Json.member "passed" probe) Json.to_bool with
        | Some true -> "serial-ok"
        | _ -> "serial-FAIL")
    | None -> "-")

let default_params =
  {
    spec =
      Spec.v ~window:8 ~shards:4 ~fuse:true Spec.Slist
        (Structs.Mode.Rr_kind (module Rr.V));
    threads = 4;
    key_bits = 10;
    theta = 0.99;
    read_pct = 70;
    scan_pct = 5;
    multi_pct = 5;
    batch = 4;
    arrival = Closed_loop;
    warmup_s = 1.0;
    measure_s = 3.0;
    seed = 0x10ad;
    json_stdout = false;
    out = default_out;
  }

let run p ~mode =
  Printf.printf
    "service load: %s, %d threads, %d shards, theta %.2f, %s arrival, warmup \
     %.1fs + measure %.1fs -> %s\n\
     %!"
    (Spec.label p.spec) p.threads
    (Option.value p.spec.Spec.shards ~default:1)
    p.theta
    (match p.arrival with Open_loop r -> Printf.sprintf "open(%.0f/s)" r
    | Closed_loop -> "closed")
    p.warmup_s p.measure_s p.out;
  let js = report p ~mode in
  write_report ~out:p.out js;
  if p.json_stdout then print_endline (Json.to_string js);
  summarize js;
  (match validate js with
  | Ok () -> ()
  | Error e -> Printf.eprintf "!! %s fails %s validation: %s\n%!" p.out schema e);
  Printf.printf "wrote %s\n%!" p.out

let smoke () =
  let p =
    {
      default_params with
      threads = 2;
      key_bits = 8;
      warmup_s = 0.2;
      measure_s = 0.6;
      arrival = Open_loop 3000.;
    }
  in
  let js = report p ~mode:"smoke" in
  write_report ~out:p.out js;
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        prerr_endline ("service-smoke: " ^ m);
        exit 1)
      fmt
  in
  let ic = open_in p.out in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  (match Json.of_string text with
  | Error e -> fail "emitted JSON does not parse: %s" e
  | Ok parsed -> (
      if not (Json.equal parsed js) then
        fail "JSON round-trip changed the value";
      match validate parsed with
      | Error e -> fail "schema validation failed: %s" e
      | Ok () -> ()));
  summarize js;
  Printf.printf "service-smoke OK: %s validates against %s\n" p.out schema
