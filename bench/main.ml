(* Benchmark entry point. Default run: every figure in quick mode plus the
   reclamation and micro benches, printed as text tables. See README for
   the figure-to-paper mapping; EXPERIMENTS.md records a reference run. *)

let parse_threads s =
  try
    let ts = String.split_on_char ',' s |> List.map int_of_string in
    if ts = [] || List.exists (fun t -> t < 1) ts then None else Some ts
  with Failure _ -> None

let usage () =
  print_string
    "usage: main.exe [command] [options]\n\n\
     commands:\n\
    \  all            every figure + reclaim + ablation + micro (default)\n\
    \  figure N       regenerate Figure N of the paper (N in 2..7, or 'all')\n\
    \  reclaim        reclamation footprint comparison\n\
    \  ablation       design-choice ablations (scatter, split unlink, ...)\n\
    \  micro          Bechamel per-operation latency benchmarks\n\
    \  telemetry      contended run with telemetry on; report as table,\n\
    \                 or as JSON with --json\n\
    \  telemetry-smoke  micro + contended run under telemetry; validate\n\
    \                 the emitted JSON schema (used by @telemetry-smoke)\n\
    \  scaling        thread-sweep scalability baseline; writes\n\
    \                 BENCH_scaling.json (schema hohtx-bench/1)\n\
    \  scaling-smoke  tiny 2-thread sweep + schema validation of the\n\
    \                 emitted file (used by @bench-smoke)\n\
    \  service        sustained-load run against the sharded service;\n\
    \                 writes BENCH_service.json (schema hohtx-load/1)\n\
    \  service-matrix service-knob probe matrix: caller-runs baseline,\n\
    \                 +pool, +pool+hotcache, all-on, plus an open-loop\n\
    \                 overload pair asserting SLO shedding; writes\n\
    \                 BENCH_service.json (schema hohtx-load/1, matrix doc)\n\
    \  service-smoke  miniature probe matrix + schema/verdict validation\n\
    \                 of the emitted file (used by @service-load-smoke)\n\
    \  soak           adversarial soak: scripted churn phases + stalled-\n\
    \                 reader and crash adversaries; writes BENCH_soak.json\n\
    \                 (schema hohtx-soak/1); with --scenario, replay one\n\
    \                 DST adversary (stalled-reader|crash-commit|crash-2pc)\n\
    \  soak-smoke     miniature deterministic soak + schema validation of\n\
    \                 the emitted file (used by @soak-smoke)\n\n\
     options:\n\
    \  --json         emit the report as JSON on stdout too (telemetry,\n\
    \                 scaling)\n\
    \  --full         paper-scale parameters (50k ops/thread, 21-bit trees)\n\
    \  --quick        reduced parameters (default)\n\
    \  --verify       run the serialization checker on every benchmark run\n\
    \  --aborts       also print abort-rate tables per panel\n\
    \  --threads LIST comma-separated thread counts (default 1,2,4,8)\n\
    \  --csv DIR      also write CSV series under DIR\n\
    \  --out FILE     output path for the scaling/service report\n\
    \                 (default BENCH_scaling.json / BENCH_service.json)\n\
    \  --shards N     service: shard count (default 4)\n\
    \  --theta F      service: Zipfian skew exponent (default 0.99)\n\
    \  --rate R       service: open-loop arrival rate in req/s\n\
    \                 (default: closed loop)\n\
    \  --duration S   service: steady-state window seconds (default 3)\n\
    \  --pipeline N   service: outstanding async submissions per client\n\
    \                 (default 1 = synchronous issue)\n\
    \  --seed N       soak/service: deterministic seed\n\
    \  --key-bits N   soak/service: key-range exponent (default 8/10)\n\
    \  --phases S     soak: churn script, e.g. grow:4x400,storm:4x600@0.99\n\
    \  --spec JSON    soak/service: full spec document (as emitted in\n\
    \                 reports; service: includes pool/hotcache/slo knobs)\n\
    \  --scenario S   soak: run one DST adversary instead of the churn run\n\
    \  --slo-us N     soak: per-op latency SLO in microseconds (default 1000)\n"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = ref true in
  let verify = ref false in
  let aborts = ref false in
  let json = ref false in
  let csv_dir = ref None in
  let out = ref None in
  let threads = ref [ 1; 2; 4; 8 ] in
  let shards = ref 4 in
  let theta = ref 0.99 in
  let rate = ref None in
  let duration = ref 3.0 in
  let seed = ref None in
  let key_bits = ref None in
  let phases = ref None in
  let spec = ref None in
  let scenario = ref None in
  let slo_us = ref None in
  let pipeline = ref None in
  let command = ref [] in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
        quick := false;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--verify" :: rest ->
        verify := true;
        parse rest
    | "--aborts" :: rest ->
        aborts := true;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        parse rest
    | "--out" :: path :: rest ->
        out := Some path;
        parse rest
    | "--shards" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            shards := n;
            parse rest
        | _ ->
            prerr_endline "bad --shards";
            exit 2)
    | "--theta" :: f :: rest -> (
        match float_of_string_opt f with
        | Some f when f >= 0. ->
            theta := f;
            parse rest
        | _ ->
            prerr_endline "bad --theta";
            exit 2)
    | "--rate" :: r :: rest -> (
        match float_of_string_opt r with
        | Some r when r > 0. ->
            rate := Some r;
            parse rest
        | _ ->
            prerr_endline "bad --rate";
            exit 2)
    | "--duration" :: s :: rest -> (
        match float_of_string_opt s with
        | Some s when s > 0. ->
            duration := s;
            parse rest
        | _ ->
            prerr_endline "bad --duration";
            exit 2)
    | "--threads" :: ts :: rest -> (
        match parse_threads ts with
        | Some ts ->
            threads := ts;
            parse rest
        | None ->
            prerr_endline "bad --threads";
            exit 2)
    | "--seed" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n ->
            seed := Some n;
            parse rest
        | None ->
            prerr_endline "bad --seed";
            exit 2)
    | "--key-bits" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 && n <= 20 ->
            key_bits := Some n;
            parse rest
        | _ ->
            prerr_endline "bad --key-bits";
            exit 2)
    | "--phases" :: s :: rest -> (
        match Soak.parse_phases s with
        | Ok ps ->
            phases := Some ps;
            parse rest
        | Error e ->
            prerr_endline ("bad --phases: " ^ e);
            exit 2)
    | "--spec" :: s :: rest -> (
        match
          Result.bind (Telemetry.Json.of_string s)
            Harness.Factories.Spec.of_json
        with
        | Ok sp ->
            spec := Some sp;
            parse rest
        | Error e ->
            prerr_endline ("bad --spec: " ^ e);
            exit 2)
    | "--scenario" :: s :: rest ->
        scenario := Some s;
        parse rest
    | "--pipeline" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            pipeline := Some n;
            parse rest
        | _ ->
            prerr_endline "bad --pipeline";
            exit 2)
    | "--slo-us" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            slo_us := Some n;
            parse rest
        | _ ->
            prerr_endline "bad --slo-us";
            exit 2)
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | arg :: rest ->
        command := !command @ [ arg ];
        parse rest
  in
  parse args;
  let p =
    {
      Bench_figures.quick = !quick;
      csv_dir = !csv_dir;
      verify = !verify;
      aborts = !aborts;
      threads_list = !threads;
    }
  in
  let figure = function
    | "2" -> Bench_figures.figure_2 p
    | "3" -> Bench_figures.figure_3 p
    | "4" -> Bench_figures.figure_4 p
    | "5" -> Bench_figures.figure_5 p
    | "6" -> Bench_figures.figure_6 p
    | "7" -> Bench_figures.figure_7 p
    | "all" ->
        List.iter
          (fun f -> f p)
          Bench_figures.
            [ figure_2; figure_3; figure_4; figure_5; figure_6; figure_7 ]
    | n ->
        Printf.eprintf "unknown figure %S\n" n;
        exit 2
  in
  Tm.Thread.with_registered (fun _ ->
      match !command with
      | [] | [ "all" ] ->
          Printf.printf
            "hohtx benchmarks (%s mode; threads = %s; 1 run per point)\n"
            (if !quick then "quick" else "full")
            (String.concat "," (List.map string_of_int !threads));
          figure "all";
          Bench_figures.reclaim_bench p;
          Bench_figures.ablation_bench p;
          Bench_micro.run ()
      | [ "figure"; n ] -> figure n
      | [ "reclaim" ] -> Bench_figures.reclaim_bench p
      | [ "ablation" ] -> Bench_figures.ablation_bench p
      | [ "micro" ] -> Bench_micro.run ()
      | [ "telemetry" ] -> Bench_telemetry.run ~json:!json ()
      | [ "telemetry-smoke" ] -> Bench_telemetry.smoke ()
      | [ "scaling" ] ->
          Bench_scaling.run
            {
              Bench_scaling.quick = !quick;
              verify = !verify;
              threads_list = !threads;
              json_stdout = !json;
              out = Option.value !out ~default:Bench_scaling.default_out;
            }
      | [ "scaling-smoke" ] -> Bench_scaling.smoke ()
      | [ "service" ] ->
          let d = Bench_service.default_params in
          Bench_service.run
            {
              d with
              Bench_service.spec =
                (match !spec with
                | Some sp -> sp
                | None ->
                    { d.Bench_service.spec with
                      Harness.Factories.Spec.shards = Some !shards });
              threads = List.fold_left max 1 !threads;
              theta = !theta;
              key_bits =
                Option.value !key_bits ~default:d.Bench_service.key_bits;
              seed = Option.value !seed ~default:d.Bench_service.seed;
              pipeline =
                Option.value !pipeline ~default:d.Bench_service.pipeline;
              arrival =
                (match !rate with
                | Some r -> Bench_service.Open_loop r
                | None -> Bench_service.Closed_loop);
              warmup_s = (if !quick then 0.5 else 1.0);
              measure_s = !duration;
              json_stdout = !json;
              out = Option.value !out ~default:Bench_service.default_out;
            }
            ~mode:(if !quick then "quick" else "full")
      | [ "service-matrix" ] ->
          let threads = List.fold_left max 1 !threads in
          Bench_service.run_matrix
            {
              (Bench_service.matrix_params ~threads ~measure_s:!duration) with
              Bench_service.theta = !theta;
              json_stdout = !json;
              out = Option.value !out ~default:Bench_service.default_out;
            }
            ~mode:(if !quick then "quick" else "full")
      | [ "service-smoke" ] -> Bench_service.smoke ()
      | [ "soak" ] -> (
          let d = Bench_soak.default_params in
          let sp = Option.value !spec ~default:d.Bench_soak.spec in
          let sd = Option.value !seed ~default:d.Bench_soak.seed in
          match !scenario with
          | Some sc -> Bench_soak.run_scenario ~scenario:sc ~seed:sd sp
          | None ->
              Bench_soak.run
                {
                  Bench_soak.spec = sp;
                  phases = Option.value !phases ~default:d.Bench_soak.phases;
                  key_bits =
                    Option.value !key_bits ~default:d.Bench_soak.key_bits;
                  seed = sd;
                  slo_us = Option.value !slo_us ~default:d.Bench_soak.slo_us;
                  json_stdout = !json;
                  out = Option.value !out ~default:Bench_soak.default_out;
                }
                ~mode:(if !quick then "quick" else "full"))
      | [ "soak-smoke" ] -> Bench_soak.smoke ()
      | _ ->
          usage ();
          exit 2)
