(* Adversarial soak harness (`main.exe soak`).

   One run = a scripted churn pass over the spec (then a second pass
   routed through the sharded service with magazines on, and a third
   with the worker pool and hot cache on, every op through the async
   submit/await path), then the two DST adversaries: the stalled-reader
   backlog contrast (EBR vs RR on the same schedule) and the crash
   scenarios (kill mid-commit, kill mid-2PC). The run emits a [hohtx-soak/1] JSON artifact;
   `main.exe soak-smoke` runs a miniature, checks determinism of the
   adversary trajectory under the fixed seed, and validates the emitted
   file against the schema (the @soak-smoke alias).

   Every oracle failure — churn verdicts, stall accounting, crash
   recovery — carries a one-line `main.exe soak ...` reproduction
   command; `run` prints them and exits nonzero. *)

open Harness
module Spec = Factories.Spec
module Json = Telemetry.Json

let schema = "hohtx-soak/1"
let default_out = "BENCH_soak.json"
let rr_v : Structs.Mode.kind = Structs.Mode.Rr_kind (module Rr.V)

type params = {
  spec : Spec.t;
  phases : Soak.phase list;
  key_bits : int;
  seed : int;
  slo_us : int;
  json_stdout : bool;
  out : string;
}

let default_phases =
  match
    Soak.parse_phases "grow:4x400,storm:4x600@0.99,shrink:4x400,mix:2x400@50"
  with
  | Ok ps -> ps
  | Error e -> invalid_arg e

let default_params =
  {
    spec = Spec.v ~window:4 Spec.Slist rr_v;
    phases = default_phases;
    key_bits = 8;
    seed = 0x50ac;
    slo_us = 1000;
    json_stdout = false;
    out = default_out;
  }

(* ---- collected results ---- *)

type results = {
  r_churn : (bool * Soak.churn_result) list;  (** service flag, result *)
  r_stall_rr : Soak.stall_result;
  r_stall_ebr : Soak.stall_result;
  r_crashes : Soak.crash_result list;
}

let collect p =
  (* the churn passes run real domains and must finish before the DST
     scenarios reset the thread-id space *)
  let churn spec =
    Soak.run_churn ~slo_us:p.slo_us ~seed:p.seed ~key_bits:p.key_bits
      ~phases:p.phases spec
  in
  let plain = churn p.spec in
  let svc_spec =
    { p.spec with Spec.shards = Some 2; fuse = Some true; magazines = Some true }
  in
  let sharded = churn svc_spec in
  (* third pass: same sharded spec with the worker pool and hot cache
     on; run_churn routes every op through submit/await, so the async
     queues, fused drains and cache invalidation churn for whole phases
     under real domains, then must survive shutdown with zero leaks *)
  let pooled_spec =
    { svc_spec with Spec.pool = Some true; hotcache = Some true }
  in
  let pooled = churn pooled_spec in
  let stall kind =
    Soak.stalled_reader ~seed:p.seed (Spec.v p.spec.Spec.structure kind)
  in
  let stall_rr = stall rr_v in
  let stall_ebr = stall Structs.Mode.Ebr in
  let crash1 =
    Soak.crash_mid_commit ~seed:p.seed (Spec.v p.spec.Spec.structure rr_v)
  in
  let crash2 =
    Soak.crash_mid_2pc ~seed:p.seed
      (Spec.v ~window:4 ~shards:2 ~fuse:true ~magazines:true Spec.Slist rr_v)
  in
  {
    r_churn = [ (false, plain); (true, sharded); (true, pooled) ];
    r_stall_rr = stall_rr;
    r_stall_ebr = stall_ebr;
    r_crashes = [ crash1; crash2 ];
  }

let failures r =
  List.filter_map (fun (_, c) -> Soak.churn_failed c) r.r_churn
  @ List.filter_map
      (fun (s : Soak.stall_result) -> s.Soak.s_error)
      [ r.r_stall_rr; r.r_stall_ebr ]
  @ (if r.r_stall_ebr.Soak.s_hwm <= r.r_stall_rr.Soak.s_hwm then
       [
         Printf.sprintf
           "EBR backlog hwm %d not above RR hwm %d under a stalled reader\n\
           \  repro: %s"
           r.r_stall_ebr.Soak.s_hwm r.r_stall_rr.Soak.s_hwm
           r.r_stall_ebr.Soak.s_repro;
       ]
     else [])
  @ List.filter_map (fun (k : Soak.crash_result) -> k.Soak.k_error) r.r_crashes

(* ---- report ---- *)

let verdict_json = function
  | Ok () -> Json.String "ok"
  | Error e -> Json.String e

let phase_json (r : Soak.phase_result) =
  Json.Obj
    [
      ("phase", Json.String r.Soak.p_shape);
      ("threads", Json.Int r.Soak.p_threads);
      ("ops", Json.Int r.Soak.p_ops);
      ("elapsed_s", Json.Float r.Soak.p_elapsed_s);
      ("throughput", Json.Float r.Soak.p_throughput);
      ("slo_violations", Json.Int r.Soak.p_slo_violations);
      ("live_hwm", Json.Int r.Soak.p_live_hwm);
      ("backlog", Json.Int r.Soak.p_backlog);
    ]

let churn_json (service, (c : Soak.churn_result)) =
  Json.Obj
    [
      ("label", Json.String c.Soak.c_label);
      ("service", Json.Bool service);
      ("phases", Json.List (List.map phase_json c.Soak.c_phases));
      ("san", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) c.Soak.c_san));
      ( "serial",
        match c.Soak.c_serial with
        | None -> Json.String "skipped"
        | Some v -> verdict_json v );
      ("check", verdict_json c.Soak.c_check);
      ("leaked", Json.Int c.Soak.c_leaked);
      ("repro", Json.String c.Soak.c_repro);
    ]

let stall_json (s : Soak.stall_result) =
  Json.Obj
    [
      ("label", Json.String s.Soak.s_label);
      ( "samples",
        Json.List
          (Array.to_list (Array.map (fun v -> Json.Int v) s.Soak.s_samples)) );
      ("hwm", Json.Int s.Soak.s_hwm);
      ("final_backlog", Json.Int s.Soak.s_final_backlog);
      ("error", Json.String (Option.value s.Soak.s_error ~default:"ok"));
      ("repro", Json.String s.Soak.s_repro);
    ]

let crash_json (k : Soak.crash_result) =
  Json.Obj
    [
      ("label", Json.String k.Soak.k_label);
      ("scenario", Json.String k.Soak.k_scenario);
      ("recovered", Json.Int k.Soak.k_recovered);
      ("serial_ok", Json.Bool k.Soak.k_serial_ok);
      ("leaked", Json.Int k.Soak.k_leaked);
      ("error", Json.String (Option.value k.Soak.k_error ~default:"ok"));
      ("repro", Json.String k.Soak.k_repro);
    ]

let report_json p ~mode r =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("bench", Json.String "soak");
      ("mode", Json.String mode);
      ("seed", Json.Int p.seed);
      ("key_bits", Json.Int p.key_bits);
      ("slo_us", Json.Int p.slo_us);
      ("phases", Json.String (Soak.print_phases p.phases));
      ("spec", Spec.to_json p.spec);
      ( "repro",
        Json.String
          (Soak.repro ~scenario:"churn" ~seed:p.seed ~key_bits:p.key_bits
             ~phases:p.phases p.spec) );
      ("churn", Json.List (List.map churn_json r.r_churn));
      ( "stalled_reader",
        Json.Obj
          [
            ("rr", stall_json r.r_stall_rr);
            ("ebr", stall_json r.r_stall_ebr);
            ( "contrast_ok",
              Json.Bool (r.r_stall_ebr.Soak.s_hwm > r.r_stall_rr.Soak.s_hwm) );
          ] );
      ("crashes", Json.List (List.map crash_json r.r_crashes));
    ]

(* ---- schema validation ---- *)

let validate js =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let field name conv o =
    match Option.bind (Json.member name o) conv with
    | Some v -> Ok v
    | None -> err "missing or ill-typed field %S" name
  in
  let* s = field "schema" Json.to_string_opt js in
  let* () = if s = schema then Ok () else err "schema %S, wanted %S" s schema in
  let* b = field "bench" Json.to_string_opt js in
  let* () = if b = "soak" then Ok () else err "bench %S" b in
  let* _ = field "mode" Json.to_string_opt js in
  let* _ = field "seed" Json.to_int js in
  let* kb = field "key_bits" Json.to_int js in
  let* () = if kb >= 1 then Ok () else err "key_bits < 1" in
  let* slo = field "slo_us" Json.to_int js in
  let* () = if slo >= 1 then Ok () else err "slo_us < 1" in
  let* phases_s = field "phases" Json.to_string_opt js in
  let* () =
    match Soak.parse_phases phases_s with
    | Error e -> err "phase script: %s" e
    | Ok ps ->
        if Soak.print_phases ps = phases_s then Ok ()
        else err "phase script %S does not round-trip" phases_s
  in
  let* spec_js = field "spec" Option.some js in
  let* _ =
    match Spec.of_json spec_js with
    | Ok sp -> Ok sp
    | Error e -> err "embedded spec: %s" e
  in
  let* repro = field "repro" Json.to_string_opt js in
  let* () =
    if String.length repro > 0 then Ok () else err "empty repro command"
  in
  let* churn = field "churn" Json.to_list js in
  let* () = if churn <> [] then Ok () else err "no churn runs" in
  let* () =
    List.fold_left
      (fun acc c ->
        let* () = acc in
        let* label = field "label" Json.to_string_opt c in
        let* check = field "check" Json.to_string_opt c in
        let* serial = field "serial" Json.to_string_opt c in
        let* leaked = field "leaked" Json.to_int c in
        let* _ = field "repro" Json.to_string_opt c in
        let* phases = field "phases" Json.to_list c in
        let* () =
          if phases <> [] then Ok () else err "churn %s: no phases" label
        in
        let* () =
          List.fold_left
            (fun acc ph ->
              let* () = acc in
              let* ops = field "ops" Json.to_int ph in
              let* tput = field "throughput" Json.to_float ph in
              let* slo_v = field "slo_violations" Json.to_int ph in
              let* hwm = field "live_hwm" Json.to_int ph in
              let* backlog = field "backlog" Json.to_int ph in
              if ops <= 0 then err "churn %s: phase ran no ops" label
              else if tput <= 0. then err "churn %s: throughput <= 0" label
              else if slo_v < 0 || hwm < 0 || backlog < 0 then
                err "churn %s: negative phase counter" label
              else Ok ())
            (Ok ()) phases
        in
        if check <> "ok" then err "churn %s: check: %s" label check
        else if serial <> "ok" && serial <> "skipped" then
          err "churn %s: serial: %s" label serial
        else if leaked <> 0 then err "churn %s: %d slots leaked" label leaked
        else Ok ())
      (Ok ()) churn
  in
  let* stall = field "stalled_reader" Option.some js in
  let stall_side name =
    let* side = field name Option.some stall in
    let* e = field "error" Json.to_string_opt side in
    let* () = if e = "ok" then Ok () else err "stall %s: %s" name e in
    let* hwm = field "hwm" Json.to_int side in
    let* fb = field "final_backlog" Json.to_int side in
    let* samples = field "samples" Json.to_list side in
    let* () =
      if samples <> [] then Ok () else err "stall %s: no samples" name
    in
    Ok (hwm, fb)
  in
  let* rr_hwm, rr_fb = stall_side "rr" in
  let* ebr_hwm, ebr_fb = stall_side "ebr" in
  let* contrast = field "contrast_ok" Json.to_bool stall in
  let* () =
    if not contrast then err "stalled-reader contrast flagged failed"
    else if ebr_hwm <= rr_hwm then
      err "EBR backlog hwm %d not above RR hwm %d" ebr_hwm rr_hwm
    else if rr_fb <> 0 then err "RR left %d slots to the final drain" rr_fb
    else if ebr_fb <= 0 then err "EBR final drain reclaimed nothing (%d)" ebr_fb
    else Ok ()
  in
  let* crashes = field "crashes" Json.to_list js in
  let* () = if crashes <> [] then Ok () else err "no crash scenarios" in
  List.fold_left
    (fun acc k ->
      let* () = acc in
      let* scenario = field "scenario" Json.to_string_opt k in
      let* e = field "error" Json.to_string_opt k in
      let* serial_ok = field "serial_ok" Json.to_bool k in
      let* leaked = field "leaked" Json.to_int k in
      let* recovered = field "recovered" Json.to_int k in
      if e <> "ok" then err "%s: %s" scenario e
      else if not serial_ok then err "%s: history not serializable" scenario
      else if leaked <> 0 then err "%s: %d slots leaked" scenario leaked
      else if scenario = "crash-2pc" && recovered <> 1 then
        err "crash-2pc resolved %d intents, want 1" recovered
      else Ok ())
    (Ok ()) crashes

(* ---- entry points ---- *)

let write_report ~out js =
  let oc = open_out out in
  output_string oc (Json.to_string js);
  output_char oc '\n';
  close_out oc

let summarize r =
  List.iter
    (fun (service, (c : Soak.churn_result)) ->
      let ops =
        List.fold_left (fun a p -> a + p.Soak.p_ops) 0 c.Soak.c_phases
      in
      let slo =
        List.fold_left
          (fun a p -> a + p.Soak.p_slo_violations)
          0 c.Soak.c_phases
      in
      Printf.printf
        "soak churn %s%s: %d ops over %d phases | slo violations %d | checks \
         %s/%s | leaked %d\n\
         %!"
        c.Soak.c_label
        (if service then " (service)" else "")
        ops
        (List.length c.Soak.c_phases)
        slo
        (match c.Soak.c_check with Ok () -> "ok" | Error _ -> "FAIL")
        (match c.Soak.c_serial with
        | Some (Ok ()) -> "serial-ok"
        | Some (Error _) -> "serial-FAIL"
        | None -> "serial-skipped")
        c.Soak.c_leaked)
    r.r_churn;
  Printf.printf
    "soak stalled-reader: EBR backlog hwm %d vs RR hwm %d (final drain freed \
     %d vs %d)\n\
     %!"
    r.r_stall_ebr.Soak.s_hwm r.r_stall_rr.Soak.s_hwm
    r.r_stall_ebr.Soak.s_final_backlog r.r_stall_rr.Soak.s_final_backlog;
  List.iter
    (fun (k : Soak.crash_result) ->
      Printf.printf
        "soak %s on %s: recovered %d | serial %s | leaked %d | %s\n%!"
        k.Soak.k_scenario k.Soak.k_label k.Soak.k_recovered
        (if k.Soak.k_serial_ok then "ok" else "FAIL")
        k.Soak.k_leaked
        (match k.Soak.k_error with None -> "ok" | Some _ -> "FAIL"))
    r.r_crashes

let run p ~mode =
  Printf.printf "soak: %s, phases %s, %d-bit keys, seed %#x -> %s\n%!"
    (Spec.label p.spec)
    (Soak.print_phases p.phases)
    p.key_bits p.seed p.out;
  let r = collect p in
  let js = report_json p ~mode r in
  write_report ~out:p.out js;
  if p.json_stdout then print_endline (Json.to_string js);
  summarize r;
  (match validate js with
  | Ok () -> ()
  | Error e -> Printf.eprintf "!! %s fails %s validation: %s\n%!" p.out schema e);
  match failures r with
  | [] -> Printf.printf "wrote %s\n%!" p.out
  | fs ->
      List.iter (fun m -> Printf.eprintf "soak: FAIL: %s\n%!" m) fs;
      exit 1

let run_scenario ~scenario ~seed spec =
  let finish label err =
    match err with
    | None -> Printf.printf "%s %s: OK\n%!" scenario label
    | Some m ->
        Printf.eprintf "%s %s: FAIL: %s\n%!" scenario label m;
        exit 1
  in
  match scenario with
  | "stalled-reader" ->
      let r = Soak.stalled_reader ~seed spec in
      Printf.printf "%s backlog trajectory: [%s] hwm %d, final drain freed %d\n"
        r.Soak.s_label
        (String.concat ";"
           (Array.to_list (Array.map string_of_int r.Soak.s_samples)))
        r.Soak.s_hwm r.Soak.s_final_backlog;
      finish r.Soak.s_label r.Soak.s_error
  | "crash-commit" ->
      let r = Soak.crash_mid_commit ~seed spec in
      finish r.Soak.k_label r.Soak.k_error
  | "crash-2pc" ->
      let r = Soak.crash_mid_2pc ~seed spec in
      finish r.Soak.k_label r.Soak.k_error
  | s ->
      Printf.eprintf "unknown scenario %S (stalled-reader|crash-commit|crash-2pc)\n" s;
      exit 2

let smoke () =
  let p =
    {
      default_params with
      phases =
        (match
           Soak.parse_phases "grow:2x150,storm:2x200@0.99,shrink:2x150,mix:2x150@50"
         with
        | Ok ps -> ps
        | Error e -> invalid_arg e);
      key_bits = 7;
      out = default_out;
    }
  in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        prerr_endline ("soak-smoke: " ^ m);
        exit 1)
      fmt
  in
  let r = collect p in
  (match failures r with
  | [] -> ()
  | fs -> fail "oracle failures:\n%s" (String.concat "\n" fs));
  (* the adversary trajectory must replay exactly under the fixed seed *)
  let again =
    Soak.stalled_reader ~seed:p.seed (Spec.v p.spec.Spec.structure rr_v)
  in
  if again.Soak.s_samples <> r.r_stall_rr.Soak.s_samples then
    fail "stalled-reader trajectory not deterministic under seed %d\n  repro: %s"
      p.seed again.Soak.s_repro;
  let js = report_json p ~mode:"smoke" r in
  write_report ~out:p.out js;
  let ic = open_in p.out in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  (match Json.of_string text with
  | Error e -> fail "emitted JSON does not parse: %s" e
  | Ok parsed -> (
      if not (Json.equal parsed js) then
        fail "JSON round-trip changed the value";
      match validate parsed with
      | Error e -> fail "schema validation failed: %s" e
      | Ok () -> ()));
  summarize r;
  Printf.printf "soak-smoke OK: %s validates against %s\n" p.out schema
