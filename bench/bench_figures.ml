(* Reproduction of the paper's evaluation figures (Sec. 5). Each [figure_n]
   regenerates the corresponding figure's series as text tables (threads
   down the rows, one column per implementation, throughput in ops/s) and
   optional CSV files. Absolute numbers differ from the paper's i7-4770/TSX
   testbed — the substrate here is a software TM on whatever machine this
   runs on — but the comparative shape is the reproduction target. *)

open Harness
module Spec = Factories.Spec

(* Every curve is a [Spec.t]; [build] instantiates a fresh handle. *)
let build spec = (Factories.make spec).Factories.make ()

type mode_params = {
  quick : bool;
  csv_dir : string option;
  verify : bool;
  aborts : bool;  (** also print abort-rate tables per panel *)
  threads_list : int list;
}

let ops_per_thread p = if p.quick then 2000 else 50_000

(* The paper tunes W per thread count and data structure (Sec. 5.2). *)
let list_window ~threads = if threads <= 4 then 16 else 8
let tree_window ~threads = if threads <= 4 then 24 else 12

type curve = { label : string; make : threads:int -> Store.t }

let curve label make = { label; make }

let run_panel p ~title ~curves ~spec_of =
  let series, abort_series =
    List.map
      (fun c ->
        let points =
          List.map
            (fun threads ->
              let h = c.make ~threads in
              let spec = spec_of ~threads in
              let r = Driver.run ~verify:p.verify spec h in
              (match r.Driver.verdict with
              | Ok () -> ()
              | Error e ->
                  Printf.printf "!! verification failed [%s %s]: %s\n%!" title
                    c.label e);
              (threads, r))
            p.threads_list
        in
        ( {
            Report.label = c.label;
            points = List.map (fun (t, r) -> (t, r.Driver.throughput)) points;
          },
          {
            Report.label = c.label;
            points =
              List.map
                (fun (t, r) -> (t, 1000. *. Driver.abort_rate r))
                points;
          } ))
      curves
    |> List.split
  in
  Report.print_table ~title ~xlabel:"threads" series;
  if p.aborts then
    Report.print_table
      ~title:(title ^ " [aborts per 1000 attempts]")
      ~xlabel:"threads" abort_series;
  match p.csv_dir with
  | None -> ()
  | Some dir ->
      let name =
        String.map (fun c -> if c = ' ' || c = ',' || c = '%' then '_' else c) title
      in
      ignore (Report.save_csv ~dir ~name ~xlabel:"threads" series)

(* ---- curve sets ---- *)

let rr_list_curves ~window_of =
  List.map
    (fun (name, kind) ->
      curve name (fun ~threads ->
          build (Spec.v ~window:(window_of ~threads) Spec.Slist kind)))
    Factories.rr_kinds

let struct_curve ?strategy ?split_unlink structure kind ~window_of =
  curve
    (Structs.Mode.kind_name kind)
    (fun ~threads ->
      build
        (Spec.v ?strategy ?split_unlink ~window:(window_of ~threads) structure
           kind))

let slist_curve ?strategy kind ~window_of =
  struct_curve ?strategy Spec.Slist kind ~window_of

let dlist_curve ?strategy ?split_unlink kind ~window_of =
  struct_curve ?strategy ?split_unlink Spec.Dlist kind ~window_of

let bst_int_curve kind ~window_of = struct_curve Spec.Bst_int kind ~window_of
let bst_ext_curve kind ~window_of = struct_curve Spec.Bst_ext kind ~window_of

(* ---- Figure 2: singly linked list ---- *)

let figure_2 p =
  let ops = ops_per_thread p in
  List.iter
    (fun key_bits ->
      List.iter
        (fun lookup_pct ->
          let spec_of ~threads =
            Workload.spec ~key_bits ~lookup_pct ~threads ~ops_per_thread:ops ()
          in
          let curves =
            [ slist_curve Structs.Mode.Htm ~window_of:list_window ]
            @ rr_list_curves ~window_of:list_window
            @ [
                slist_curve Structs.Mode.Tmhp ~window_of:list_window;
                slist_curve Structs.Mode.Ref ~window_of:list_window;
              ]
            @
            (* the paper omits the lock-free curves in the 6-bit panels *)
            if key_bits >= 10 then
              [
                curve "LFLeak" (fun ~threads:_ ->
                    (Factories.lf_list `Leak).Factories.make ());
                curve "LFHP" (fun ~threads:_ ->
                    (Factories.lf_list `Hp).Factories.make ());
              ]
            else []
          in
          run_panel p
            ~title:
              (Printf.sprintf "Figure 2: singly linked list, %d-bit keys, %d%% lookups"
                 key_bits lookup_pct)
            ~curves ~spec_of)
        [ 0; 33; 80 ])
    [ 6; 10 ]

(* ---- Figure 3: doubly linked list ---- *)

let figure_3 p =
  let ops = ops_per_thread p in
  List.iter
    (fun key_bits ->
      List.iter
        (fun lookup_pct ->
          let spec_of ~threads =
            Workload.spec ~key_bits ~lookup_pct ~threads ~ops_per_thread:ops ()
          in
          let curves =
            [ dlist_curve Structs.Mode.Htm ~window_of:list_window ]
            @ List.map
                (fun (name, kind) ->
                  curve name (fun ~threads ->
                      build
                        (Spec.v ~window:(list_window ~threads) Spec.Dlist kind)))
                Factories.rr_kinds
            @ [ dlist_curve Structs.Mode.Tmhp ~window_of:list_window ]
          in
          run_panel p
            ~title:
              (Printf.sprintf "Figure 3: doubly linked list, %d-bit keys, %d%% lookups"
                 key_bits lookup_pct)
            ~curves ~spec_of)
        [ 0; 33; 80 ])
    [ 6; 10 ]

(* ---- Figure 4: window size sweep ---- *)

let figure_4 p =
  let ops = ops_per_thread p in
  let windows = [ 1; 2; 4; 8; 16; 32 ] in
  List.iter
    (fun kind ->
      let series =
        List.map
          (fun threads ->
            let points =
              List.map
                (fun w ->
                  let h = build (Spec.v ~window:w Spec.Slist kind) in
                  let spec =
                    Workload.spec ~key_bits:10 ~lookup_pct:33 ~threads
                      ~ops_per_thread:ops ()
                  in
                  let r = Driver.run ~verify:p.verify spec h in
                  (w, r.Driver.throughput))
                windows
            in
            { Report.label = Printf.sprintf "%d-thread" threads; points })
          p.threads_list
      in
      Report.print_table
        ~title:
          (Printf.sprintf
             "Figure 4: window size impact, %s, 10-bit keys, 33%% lookups"
             (Structs.Mode.kind_name kind))
        ~xlabel:"window" series;
      match p.csv_dir with
      | None -> ()
      | Some dir ->
          ignore
            (Report.save_csv ~dir
               ~name:
                 (Printf.sprintf "figure4_%s" (Structs.Mode.kind_name kind))
               ~xlabel:"window" series))
    [ Structs.Mode.Rr_kind (module Rr.Fa); Structs.Mode.Rr_kind (module Rr.Xo) ]

(* ---- Figure 5: allocator impact ---- *)

let figure_5 p =
  let ops = ops_per_thread p in
  List.iter
    (fun lookup_pct ->
      let spec_of ~threads =
        Workload.spec ~key_bits:9 ~lookup_pct ~threads ~ops_per_thread:ops ()
      in
      let strategies =
        [ ("J-", Mempool.Size_class); ("H-", Mempool.Thread_arena) ]
      in
      let curves =
        List.concat_map
          (fun (prefix, strategy) ->
            [
              curve (prefix ^ "TMHP") (fun ~threads ->
                  build
                    (Spec.v ~strategy ~window:(list_window ~threads) Spec.Dlist
                       Structs.Mode.Tmhp));
              curve (prefix ^ "RR-XO") (fun ~threads ->
                  build
                    (Spec.v ~strategy ~window:(list_window ~threads) Spec.Dlist
                       (Structs.Mode.Rr_kind (module Rr.Xo))));
            ])
          strategies
      in
      run_panel p
        ~title:
          (Printf.sprintf
             "Figure 5: allocator impact, doubly linked list, 9-bit keys, %d%% lookups"
             lookup_pct)
        ~curves ~spec_of)
    [ 0; 98 ]

(* ---- Figure 6: internal BST ---- *)

let figure_6 p =
  let ops = ops_per_thread p in
  (* the paper uses 8- and 21-bit keys; 21-bit prefill (1M keys) is scaled
     down in quick mode to keep single-core runs tractable *)
  let big_bits = if p.quick then 14 else 21 in
  List.iter
    (fun key_bits ->
      List.iter
        (fun lookup_pct ->
          let spec_of ~threads =
            Workload.spec ~key_bits ~lookup_pct ~threads ~ops_per_thread:ops ()
          in
          let curves =
            [ bst_int_curve Structs.Mode.Htm ~window_of:tree_window ]
            @ List.map
                (fun (name, kind) ->
                  curve name (fun ~threads ->
                      build
                        (Spec.v ~window:(tree_window ~threads) Spec.Bst_int
                           kind)))
                Factories.rr_kinds
          in
          run_panel p
            ~title:
              (Printf.sprintf "Figure 6: internal BST, %d-bit keys, %d%% lookups"
                 key_bits lookup_pct)
            ~curves ~spec_of)
        [ 0; 50; 80 ])
    [ 8; big_bits ]

(* ---- Figure 7: external BST ---- *)

let figure_7 p =
  let ops = ops_per_thread p in
  let key_bits = if p.quick then 14 else 21 in
  let spec_of ~threads =
    Workload.spec ~key_bits ~lookup_pct:50 ~threads ~ops_per_thread:ops ()
  in
  let curves =
    [
      curve "LFLeak-NM" (fun ~threads:_ -> (Factories.nm_tree ()).Factories.make ());
      bst_ext_curve Structs.Mode.Htm ~window_of:tree_window;
      bst_ext_curve Structs.Mode.Tmhp ~window_of:tree_window;
    ]
    @ List.map
        (fun (name, kind) ->
          curve name (fun ~threads ->
              build (Spec.v ~window:(tree_window ~threads) Spec.Bst_ext kind)))
        Factories.rr_kinds
  in
  run_panel p
    ~title:
      (Printf.sprintf "Figure 7: external BST, %d-bit keys, 50%% lookups"
         key_bits)
    ~curves ~spec_of

(* ---- reclamation footprint comparison (Sec. 5 text) ---- *)

let reclaim_bench p =
  let ops = ops_per_thread p in
  let threads = List.fold_left max 1 p.threads_list in
  let spec =
    Workload.spec ~key_bits:8 ~lookup_pct:20 ~threads ~ops_per_thread:ops ()
  in
  let rows =
    List.map
      (fun (label, make) ->
        let h : Store.t = make () in
        let r = Driver.run ~verify:p.verify spec h in
        (label, r))
      (([
          ("RR-V", Structs.Mode.Rr_kind (module Rr.V));
          ("RR-XO", Structs.Mode.Rr_kind (module Rr.Xo));
          ("TMHP", Structs.Mode.Tmhp);
          ("EBR", Structs.Mode.Ebr);
          ("REF", Structs.Mode.Ref);
        ]
       |> List.map (fun (label, kind) ->
              (label, fun () -> build (Spec.v ~window:8 Spec.Slist kind))))
      @ [
          ("LFHP", fun () -> (Factories.lf_list `Hp).Factories.make ());
          ("LFLeak", fun () -> (Factories.lf_list `Leak).Factories.make ());
        ])
  in
  Printf.printf "\n== Reclamation footprint (singly linked list, %d threads) ==\n"
    threads;
  Printf.printf "%-8s %14s %14s %14s %14s\n" "impl" "ops/s" "max backlog"
    "leaked" "live after";
  List.iter
    (fun (label, (r : Driver.result)) ->
      let fmt_opt = function Some v -> string_of_int v | None -> "-" in
      Printf.printf "%-8s %14.0f %14s %14s %14s\n" label r.Driver.throughput
        (fmt_opt r.Driver.max_backlog)
        (fmt_opt r.Driver.leaked)
        (fmt_opt r.Driver.pool_live))
    rows;
  print_newline ()

(* ---- ablations called out in DESIGN.md ---- *)

let ablation_bench p =
  let ops = ops_per_thread p in
  let threads = List.fold_left max 1 p.threads_list in
  let spec =
    Workload.spec ~key_bits:8 ~lookup_pct:33 ~threads ~ops_per_thread:ops ()
  in
  let throughput h =
    (Driver.run ~verify:p.verify spec h).Driver.throughput
  in
  Printf.printf "\n== Ablations (%d threads, 8-bit keys, 33%% lookups) ==\n"
    threads;
  (* scatter *)
  List.iter
    (fun scatter ->
      let h =
        build
          (Spec.v ~window:8 ~scatter Spec.Slist
             (Structs.Mode.Rr_kind (module Rr.Xo)))
      in
      Printf.printf "slist RR-XO scatter=%-5b          %12.0f ops/s\n" scatter
        (throughput h))
    [ true; false ];
  (* dlist split unlink *)
  List.iter
    (fun split ->
      let h =
        build
          (Spec.v ~window:8 ~split_unlink:split Spec.Dlist
             (Structs.Mode.Rr_kind (module Rr.Fa)))
      in
      Printf.printf "dlist RR-FA split_unlink=%-5b     %12.0f ops/s\n" split
        (throughput h))
    [ true; false ];
  (* RR-DM eager vs lazy bucket unlink *)
  List.iter
    (fun eager ->
      let rr_config = { Rr.Config.default with dm_eager_unlink = eager } in
      let h =
        build
          (Spec.v ~window:8 ~rr_config Spec.Slist
             (Structs.Mode.Rr_kind (module Rr.Dm)))
      in
      Printf.printf "slist RR-DM eager_unlink=%-5b     %12.0f ops/s\n" eager
        (throughput h))
    [ true; false ];
  (* hash set extension (paper Sec. 6): reservations across bucket chains *)
  List.iter
    (fun (label, kind) ->
      let h = build (Spec.v ~buckets:16 ~window:8 Spec.Hashset kind) in
      Printf.printf "hashset %-24s %12.0f ops/s\n" label (throughput h))
    [
      ("RR-V", Structs.Mode.Rr_kind (module Rr.V));
      ("RR-FA", Structs.Mode.Rr_kind (module Rr.Fa));
      ("HTM", Structs.Mode.Htm);
      ("TMHP", Structs.Mode.Tmhp);
      ("EBR", Structs.Mode.Ebr);
    ];
  (* serial-fallback threshold (the GCC retry knob) *)
  List.iter
    (fun attempts ->
      let h = build (Spec.v ~max_attempts:attempts Spec.Slist Structs.Mode.Htm) in
      Printf.printf "slist HTM max_attempts=%-2d         %12.0f ops/s\n"
        attempts (throughput h))
    [ 1; 2; 4; 8; 16 ];
  print_newline ()
