(* Seeded violations hidden behind local module aliases and a functor
   application — the blind spot the lint's alias resolution closes. Each
   line marked BAD must be reported; parsed only, never compiled. *)

module H = Hoh
module T = Tm
module P = Mempool
module N = Lnode
module A = Atomic
module H2 = H (* alias-of-alias chains resolve too *)

(* BAD site-label: aliased entry points without ~site *)
let no_site_hoh () = H.apply (fun _win -> ())
let no_site_tm () = T.atomic (fun _txn -> ())
let no_site_chain () = H2.run (fun _win -> ())

(* BAD free-discipline: aliased Mempool.free outside Tm.defer *)
let raw_free n = P.free n

(* BAD pool-alloc: aliased bare constructor bypasses the pool *)
let bare_make k = N.make k

(* BAD raw-atomic: aliased Atomic on a tvar payload field *)
let raw_store n v = A.set n.next v
