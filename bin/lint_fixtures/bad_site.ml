(* Seeded lint violations, one per rule (plus one extra site omission).
   This file is never compiled — [data_only_dirs] keeps it out of the
   build — it only feeds the checker's --expect-violations self-test,
   proving [dune build @lint] would fail on each discipline breach. *)

(* [site-label] x2: transaction entries without abort attribution. *)
let unlabelled_window t step = Rr.Hoh.apply_stamped ~rr:t.ops step
let unlabelled_txn body = Tm.atomic body

(* [raw-atomic]: poking a tvar payload behind the TM's back. *)
let backdoor_write n = Atomic.set n.Snode.key 0

(* [free-discipline]: an immediate free inside a window body would race
   the revoke that only takes effect at commit. *)
let eager_free pool txn ~thread n =
  ignore txn;
  Mempool.free pool ~thread n

(* [pool-alloc]: a node the pool never sees gets no shadow slot, no
   poisoning, no reuse. *)
let rogue_node () = Lnode.make 42
