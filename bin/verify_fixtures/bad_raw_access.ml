open Structs

(* HV009: Tm.poke on a shared node's payload inside a transaction
   bypasses the TM — no version bump, no validation. *)

let bad_raw_access (t : Lnode.t Tm.tvar) =
  Tm.atomic (fun txn ->
      let n = Tm.read txn t in
      Tm.poke n.Lnode.deleted true)
