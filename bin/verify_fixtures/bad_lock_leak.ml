(* HV007: the middle lock is still held when the exception escapes. The
   acquire/release stubs mirror tm.ml's internal middle-path primitives,
   which the verifier recognizes by name. *)

let middle_acquire (m : Tm.Middle.t) = ignore m
let middle_release (m : Tm.Middle.t) = ignore m

let bad_lock_leak (m : Tm.Middle.t) (t : int Tm.tvar) =
  middle_acquire m;
  if Tm.peek t = 0 then failwith "empty";
  (* ^ exception edge leaves the lock held *)
  middle_release m
