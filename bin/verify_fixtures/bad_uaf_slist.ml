open Structs

(* Differential fixture for DESIGN.md bug #2 (use-after-free): a
   list-remove that reclaims the unlinked node directly inside the window
   — no revoke, no deferral — exactly the seeded TxSan bug, decided
   statically. *)

let remove_bad (pool : Lnode.t Mempool.t) (head : Lnode.t option Tm.tvar)
    k =
  Tm.atomic (fun txn ->
      match Tm.read txn head with
      | None -> false
      | Some curr ->
          if Tm.read txn curr.Lnode.key = k then begin
            Tm.write txn head (Tm.read txn curr.Lnode.next);
            Mempool.free pool ~thread:0 curr;
            true
          end
          else false)
