open Structs

(* HV001 on an exception edge: the happy path checks the carry, the
   exception handler dereferences it unchecked. *)

exception Lost

let find_or_fail (ops : Lnode.t Rr.ops) txn n =
  match ops.Rr.get txn n with Some ok -> ok | None -> raise Lost

let bad_deref_exn_path (t : Lnode.t option Tm.tvar) (ops : Lnode.t Rr.ops) =
  let cur = ref None in
  Tm.atomic (fun txn -> cur := Tm.read txn t);
  Tm.atomic (fun txn ->
      match !cur with
      | None -> 0
      | Some n -> (
          match find_or_fail ops txn n with
          | ok -> Tm.read txn ok.Lnode.key
          | exception Lost ->
              (* carried and unchecked: the reservation may be gone *)
              Tm.read txn n.Lnode.key))
