open Structs

(* HV004: the window commits with its reservation neither released,
   revoked, nor handed over. *)

let bad_resv_leak (t : Lnode.t Tm.tvar) (ops : Lnode.t Rr.ops) =
  Tm.atomic (fun txn ->
      let n = Tm.read txn t in
      ops.Rr.reserve txn n;
      Tm.read txn n.Lnode.key)
