(* HV000: a [@hohtx.trusted] suppression must say why. *)

let[@hohtx.trusted] bad_no_reason (t : int Tm.tvar) =
  Tm.atomic (fun txn -> Tm.read txn t)
