open Structs

(* HV003: the node is freed while this very function still holds a
   reservation on it — revoke-before-free is the whole protocol. *)

let bad_free_reserved (pool : Lnode.t Mempool.t) (t : Lnode.t Tm.tvar)
    (ops : Lnode.t Rr.ops) =
  Tm.atomic (fun txn ->
      let n = Tm.read txn t in
      ops.Rr.reserve txn n;
      Tm.defer txn (fun () -> Mempool.free pool ~thread:0 n);
      ops.Rr.release txn n)
