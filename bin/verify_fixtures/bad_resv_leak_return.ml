open Structs

(* HV004 through an early return: the found-branch returns with the
   reservation still live; only the miss-branch releases. *)

let bad_resv_leak_return (t : Lnode.t option Tm.tvar) (ops : Lnode.t Rr.ops)
    k =
  Tm.atomic (fun txn ->
      match Tm.read txn t with
      | None -> false
      | Some n ->
          ops.Rr.reserve txn n;
          if Tm.read txn n.Lnode.key = k then true (* leaks the reservation *)
          else begin
            ops.Rr.release txn n;
            false
          end)
