open Structs

(* Differential fixture for DESIGN.md bug #3 (unchecked carry): a
   skiplist-style traversal hint carried across windows and trusted
   without revalidation. *)

let search_from_hint_bad (hint : Lnode.t option ref)
    (head : Lnode.t option Tm.tvar) k =
  let start = ref None in
  Tm.atomic (fun txn -> start := Tm.read txn head);
  Tm.atomic (fun txn ->
      let n =
        match !start with
        | Some n -> n
        | None -> (match Tm.read txn head with Some n -> n | None -> raise Exit)
      in
      (* stale hint used unrevalidated: no ops.get between windows *)
      Tm.read txn n.Lnode.key = k)
