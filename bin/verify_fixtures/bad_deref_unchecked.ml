open Structs

(* HV001: a pointer carried across a window boundary is dereferenced in
   the next window without an RR check. *)

let bad_deref_unchecked (t : Lnode.t option Tm.tvar) =
  let cur = ref None in
  Tm.atomic (fun txn -> cur := Tm.read txn t);
  (* new window: [!cur] is a carried pointer, never re-checked *)
  Tm.atomic (fun txn ->
      match !cur with
      | None -> 0
      | Some n -> Tm.read txn n.Lnode.key)
