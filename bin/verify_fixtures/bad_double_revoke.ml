open Structs

(* HV005: revoking a node that this path already revoked. *)

let bad_double_revoke (t : Lnode.t Tm.tvar) (ops : Lnode.t Rr.ops) =
  Tm.atomic (fun txn ->
      let n = Tm.read txn t in
      ops.Rr.revoke txn n;
      ops.Rr.revoke txn n)
