open Structs

(* HV002: dereference of a node after it went back to the pool. *)

let bad_use_after_free (pool : Lnode.t Mempool.t) =
  let n = Lnode.alloc pool ~thread:0 in
  Mempool.free pool ~thread:0 n;
  Tm.peek n.Lnode.key
