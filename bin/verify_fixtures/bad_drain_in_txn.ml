open Structs

(* HV008: magazine drains free whole depot batches; they are only safe at
   quiescence, never inside a window. *)

let bad_drain_in_txn (pool : Lnode.t Mempool.t) (t : int Tm.tvar) =
  Tm.atomic (fun txn ->
      let v = Tm.read txn t in
      Mempool.drain_magazines pool ~thread:0;
      v)
