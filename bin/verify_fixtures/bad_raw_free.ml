open Structs

(* HV006: Mempool.free inside the window instead of Tm.defer — the free
   races the revoke it is supposed to follow. *)

let bad_raw_free (pool : Lnode.t Mempool.t) (t : Lnode.t Tm.tvar)
    (ops : Lnode.t Rr.ops) =
  Tm.atomic (fun txn ->
      let n = Tm.read txn t in
      ops.Rr.revoke txn n;
      Mempool.free pool ~thread:0 n)
