open Structs

(* Zero diagnostics expected: the violation below is real (a raw free in
   a window) but carries a reasoned [@hohtx.trusted] waiver — the
   verifier counts it instead of reporting it. *)

let[@hohtx.trusted
     "fixture: exercises the suppression path; the free is unreachable"]
    ok_waived (pool : Lnode.t Mempool.t) (t : Lnode.t Tm.tvar) =
  Tm.atomic (fun txn ->
      let n = Tm.read txn t in
      if false then Mempool.free pool ~thread:0 n)
