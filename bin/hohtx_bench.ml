(* Command-line driver for a single benchmark configuration: pick a data
   structure family, a reservation/reclamation mode, and a workload, run
   it, and print throughput, abort statistics, reclamation metrics, and the
   correctness verdict (including the commit-stamp serialization check when
   --verify is set).

   Flags that do not apply to the selected family are rejected with a
   usage message: the lock-free baselines have no transaction window, no
   scatter, no pool placement strategy, and (nm-tree) no mode — silently
   ignoring such a flag would report numbers for a configuration the user
   did not ask for. *)

open Cmdliner
open Harness

let family_conv =
  Arg.enum
    [ ("slist", `Slist); ("dlist", `Dlist); ("bst-int", `Bst_int);
      ("bst-ext", `Bst_ext); ("lf-list", `Lf_list); ("nm-tree", `Nm_tree) ]

let family_name = function
  | `Slist -> "slist"
  | `Dlist -> "dlist"
  | `Bst_int -> "bst-int"
  | `Bst_ext -> "bst-ext"
  | `Lf_list -> "lf-list"
  | `Nm_tree -> "nm-tree"

let mode_conv =
  let parse s =
    match Factories.Spec.kind_of_name (String.uppercase_ascii s) with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown mode %S (want RR-FA/RR-DM/RR-SA/RR-XO/RR-SO/RR-V/HTM/TMHP/REF/EBR)"
               s))
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Structs.Mode.kind_name m))

let run family mode window scatter fusion middle magazines key_bits lookup_pct
    threads ops verify strategy telemetry =
  let ( let* ) = Result.bind in
  let inapplicable flag v =
    match v with
    | None -> Ok ()
    | Some _ ->
        Error
          (`Msg
            (Printf.sprintf "%s does not apply to the %s family" flag
               (family_name family)))
  in
  let spec_structure =
    match family with
    | `Slist -> Some Factories.Spec.Slist
    | `Dlist -> Some Factories.Spec.Dlist
    | `Bst_int -> Some Factories.Spec.Bst_int
    | `Bst_ext -> Some Factories.Spec.Bst_ext
    | `Lf_list | `Nm_tree -> None
  in
  let* factory =
    match spec_structure with
    | Some structure ->
        let mode =
          Option.value mode ~default:(Structs.Mode.Rr_kind (module Rr.V))
        in
        let window = Option.value window ~default:8 in
        let scatter = Option.value scatter ~default:true in
        let strategy =
          match Option.value strategy ~default:`Arena with
          | `Arena -> Mempool.Thread_arena
          | `Size_class -> Mempool.Size_class
        in
        Ok
          (Factories.make
             (Factories.Spec.v ~window ~scatter ?fusion ?middle ?magazines
                ~strategy structure mode))
    | None ->
        (* Lock-free baselines take none of the transactional knobs, and
           nm-tree has no reclamation mode at all. lf-list accepts only
           TMHP (the hazard-pointer variant); omitting --mode selects the
           leaky baseline. *)
        let* () = inapplicable "--window" window in
        let* () = inapplicable "--scatter" scatter in
        let* () = inapplicable "--fusion" fusion in
        let* () = inapplicable "--middle" middle in
        let* () = inapplicable "--magazines" magazines in
        let* () = inapplicable "--allocator" strategy in
        (match family with
        | `Lf_list -> (
            match mode with
            | None -> Ok (Factories.lf_list `Leak)
            | Some Structs.Mode.Tmhp -> Ok (Factories.lf_list `Hp)
            | Some m ->
                Error
                  (`Msg
                    (Printf.sprintf
                       "mode %s does not apply to lf-list (use --mode TMHP \
                        for hazard pointers, or omit --mode for the leaky \
                        baseline)"
                       (Structs.Mode.kind_name m))))
        | _ ->
            let* () = inapplicable "--mode" mode in
            Ok (Factories.nm_tree ()))
  in
  if telemetry then Telemetry.set_enabled true;
  Tm.Thread.with_registered (fun _ ->
      let spec =
        Workload.spec ~key_bits ~lookup_pct ~threads ~ops_per_thread:ops ()
      in
      let h = factory.Factories.make () in
      let r = Driver.run ~verify spec h in
      Format.printf "%a@." Driver.pp_result r;
      let opt name = function
        | Some v -> Format.printf "  %s: %d@." name v
        | None -> ()
      in
      opt "live nodes after drain" r.Driver.pool_live;
      opt "peak deferred backlog" r.Driver.max_backlog;
      opt "leaked nodes" r.Driver.leaked;
      (match r.Driver.telemetry with
      | Some rep -> Format.printf "%a" Telemetry.Report.pp rep
      | None -> ());
      match r.Driver.verdict with
      | Ok () -> Ok 0
      | Error _ ->
          (* a failed verdict must be replayable from the report alone *)
          Format.printf "  repro: %s@."
            (String.concat " " (Array.to_list Sys.argv));
          Ok 1)

let cmd =
  let family =
    Arg.(
      value
      & opt family_conv `Slist
      & info [ "f"; "family" ] ~doc:"Data structure family: $(docv)."
          ~docv:"slist|dlist|bst-int|bst-ext|lf-list|nm-tree")
  in
  let mode =
    Arg.(
      value
      & opt (some mode_conv) None
      & info [ "m"; "mode" ]
          ~doc:"Reservation/reclamation mode: RR-FA, RR-DM, RR-SA, RR-XO, \
                RR-SO, RR-V, HTM, TMHP, REF, or EBR (default RR-V). For \
                lf-list, TMHP selects the hazard-pointer variant and \
                omitting the flag the leaky baseline; inapplicable to \
                nm-tree.")
  in
  let window =
    Arg.(
      value
      & opt (some int) None
      & info [ "w"; "window" ]
          ~doc:"Nodes per transaction (default 8; transactional families \
                only).")
  in
  let scatter =
    Arg.(
      value
      & opt (some bool) None
      & info [ "scatter" ]
          ~doc:"Scatter first window (default true; transactional families \
                only).")
  in
  let fusion =
    Arg.(
      value
      & opt (some int) None
      & info [ "fusion" ]
          ~doc:"Fuse up to $(docv) clean windows into one transaction \
                (default 1 = off; transactional families only)."
          ~docv:"K")
  in
  let middle =
    Arg.(
      value
      & opt (some bool) None
      & info [ "middle" ]
          ~doc:"Retry under the per-structure middle lock before the serial \
                fallback (default false; transactional families only).")
  in
  let magazines =
    Arg.(
      value
      & opt (some bool) None
      & info [ "magazines" ]
          ~doc:"Per-thread two-magazine pool caches (default false; \
                transactional families only).")
  in
  let key_bits =
    Arg.(value & opt int 8 & info [ "b"; "key-bits" ] ~doc:"Key range 2^BITS.")
  in
  let lookup_pct =
    Arg.(value & opt int 33 & info [ "l"; "lookups" ] ~doc:"Lookup percentage.")
  in
  let threads =
    Arg.(value & opt int 4 & info [ "t"; "threads" ] ~doc:"Worker domains.")
  in
  let ops =
    Arg.(value & opt int 10_000 & info [ "n"; "ops" ] ~doc:"Ops per thread.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Log every operation and check commit-stamp serializability.")
  in
  let strategy =
    Arg.(
      value
      & opt (some (enum [ ("arena", `Arena); ("size-class", `Size_class) ])) None
      & info [ "allocator" ]
          ~doc:"Pool placement strategy (default arena; transactional \
                families only).")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:"Enable the telemetry layer and print the post-run report \
                (latency histograms, abort attribution, gauges).")
  in
  let term =
    Term.(
      term_result ~usage:true
        (const run $ family $ mode $ window $ scatter $ fusion $ middle
        $ magazines $ key_bits $ lookup_pct $ threads $ ops $ verify
        $ strategy $ telemetry))
  in
  Cmd.v
    (Cmd.info "hohtx-bench" ~version:"1.0"
       ~doc:"Run one hand-over-hand-transactions benchmark configuration")
    term

let () = exit (Cmd.eval' cmd)
