(* Command-line driver for a single benchmark configuration: pick a data
   structure family, a reservation/reclamation mode, and a workload, run
   it, and print throughput, abort statistics, reclamation metrics, and the
   correctness verdict (including the commit-stamp serialization check when
   --verify is set). *)

open Cmdliner
open Harness

let family_conv =
  Arg.enum
    [ ("slist", `Slist); ("dlist", `Dlist); ("bst-int", `Bst_int);
      ("bst-ext", `Bst_ext); ("lf-list", `Lf_list); ("nm-tree", `Nm_tree) ]

let mode_conv =
  let parse s =
    match String.uppercase_ascii s with
    | "HTM" -> Ok Structs.Mode.Htm
    | "TMHP" -> Ok Structs.Mode.Tmhp
    | "REF" -> Ok Structs.Mode.Ref
    | up -> (
        match Rr.by_name up with
        | Some m -> Ok (Structs.Mode.Rr_kind m)
        | None ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown mode %S (want RR-FA/RR-DM/RR-SA/RR-XO/RR-SO/RR-V/HTM/TMHP/REF)"
                   s)))
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Structs.Mode.kind_name m))

let run family mode window scatter key_bits lookup_pct threads ops verify
    strategy telemetry =
  if telemetry then Telemetry.set_enabled true;
  let strategy =
    match strategy with
    | `Arena -> Mempool.Thread_arena
    | `Size_class -> Mempool.Size_class
  in
  let spec_structure =
    match family with
    | `Slist -> Some Factories.Spec.Slist
    | `Dlist -> Some Factories.Spec.Dlist
    | `Bst_int -> Some Factories.Spec.Bst_int
    | `Bst_ext -> Some Factories.Spec.Bst_ext
    | `Lf_list | `Nm_tree -> None
  in
  let factory =
    match spec_structure with
    | Some structure ->
        Factories.make
          (Factories.Spec.v ~window ~scatter ~strategy structure mode)
    | None -> (
        match family with
        | `Lf_list -> (
            match mode with
            | Structs.Mode.Tmhp -> Factories.lf_list `Hp
            | _ -> Factories.lf_list `Leak)
        | _ -> Factories.nm_tree ())
  in
  Tm.Thread.with_registered (fun _ ->
      let spec =
        Workload.spec ~key_bits ~lookup_pct ~threads ~ops_per_thread:ops ()
      in
      let h = factory.Factories.make () in
      let r = Driver.run ~verify spec h in
      Format.printf "%a@." Driver.pp_result r;
      let opt name = function
        | Some v -> Format.printf "  %s: %d@." name v
        | None -> ()
      in
      opt "live nodes after drain" r.Driver.pool_live;
      opt "peak deferred backlog" r.Driver.max_backlog;
      opt "leaked nodes" r.Driver.leaked;
      (match r.Driver.telemetry with
      | Some rep -> Format.printf "%a" Telemetry.Report.pp rep
      | None -> ());
      match r.Driver.verdict with Ok () -> 0 | Error _ -> 1)

let cmd =
  let family =
    Arg.(
      value
      & opt family_conv `Slist
      & info [ "f"; "family" ] ~doc:"Data structure family: $(docv)."
          ~docv:"slist|dlist|bst-int|bst-ext|lf-list|nm-tree")
  in
  let mode =
    Arg.(
      value
      & opt mode_conv (Structs.Mode.Rr_kind (module Rr.V))
      & info [ "m"; "mode" ]
          ~doc:"Reservation/reclamation mode: RR-FA, RR-DM, RR-SA, RR-XO, \
                RR-SO, RR-V, HTM, TMHP, or REF.")
  in
  let window =
    Arg.(value & opt int 8 & info [ "w"; "window" ] ~doc:"Nodes per transaction.")
  in
  let scatter =
    Arg.(value & opt bool true & info [ "scatter" ] ~doc:"Scatter first window.")
  in
  let key_bits =
    Arg.(value & opt int 8 & info [ "b"; "key-bits" ] ~doc:"Key range 2^BITS.")
  in
  let lookup_pct =
    Arg.(value & opt int 33 & info [ "l"; "lookups" ] ~doc:"Lookup percentage.")
  in
  let threads =
    Arg.(value & opt int 4 & info [ "t"; "threads" ] ~doc:"Worker domains.")
  in
  let ops =
    Arg.(value & opt int 10_000 & info [ "n"; "ops" ] ~doc:"Ops per thread.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Log every operation and check commit-stamp serializability.")
  in
  let strategy =
    Arg.(
      value
      & opt (enum [ ("arena", `Arena); ("size-class", `Size_class) ]) `Arena
      & info [ "allocator" ] ~doc:"Pool placement strategy.")
  in
  let telemetry =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:"Enable the telemetry layer and print the post-run report \
                (latency histograms, abort attribution, gauges).")
  in
  let term =
    Term.(
      const run $ family $ mode $ window $ scatter $ key_bits $ lookup_pct
      $ threads $ ops $ verify $ strategy $ telemetry)
  in
  Cmd.v
    (Cmd.info "hohtx-bench" ~version:"1.0"
       ~doc:"Run one hand-over-hand-transactions benchmark configuration")
    term

let () = exit (Cmd.eval' cmd)
