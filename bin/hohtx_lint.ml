(* hohtx_lint: source-level discipline checker for the transactional
   modules, run as [dune build @lint]. It enforces, syntactically, the
   contracts TxSan assumes at runtime:

   - [site-label]      every transaction entry point (Tm.atomic,
                       Tm.atomic_stamped, Hoh.apply, Hoh.apply_stamped,
                       Hoh.run) passes [~site], so abort attribution and
                       sanitizer reports can name the operation.
   - [raw-atomic]      no [Atomic.*] on record fields other than the
                       designated non-transactional ones ([gen], [pstate]):
                       tvar payloads must only be touched through [Tm].
   - [free-discipline] [Mempool.free] only runs deferred to a commit
                       ([Tm.defer] or a reclaimer's [~free] closure) —
                       after the window's revoke has been applied — or in
                       code that explicitly handles the no-transaction case
                       ([Tm.current_txn]).
   - [pool-alloc]      node records come from the pool ([Lnode.alloc] &c.),
                       never from a bare [Lnode.make]/[Snode.make]/
                       [Tnode.make], which would bypass slot shadow state
                       and poisoning.

   Pure parsetree analysis (compiler-libs, no typing): rules are
   deliberately conservative so the clean tree reports nothing. Local
   module aliases ([module H = Hoh]) are resolved within the file so an
   alias cannot smuggle an unlabeled entry point past the check.

   Usage: hohtx_lint [--expect-violations N] [--json] FILE.ml...
   Exit status 1 if violations are found (or, with --expect-violations,
   if the count differs from N — the fixture self-test). Under
   GITHUB_ACTIONS, violations also print ::error workflow annotations.
   With --json, a hohtx-diag/1 document (the same schema hohtx_verify
   emits) is printed on stdout. *)

module Vdiag = Verify.Vdiag

let violations = ref 0
let annotate = ref false
let json = ref false
let collected : Vdiag.t list ref = ref []

let report ~loc ~rule msg =
  incr violations;
  let pos = loc.Location.loc_start in
  let file = pos.Lexing.pos_fname in
  let line = pos.Lexing.pos_lnum in
  let col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol in
  collected :=
    { Vdiag.rule; file; line; col; message = msg; path = []; fn = "" }
    :: !collected;
  if not !json then
    Printf.eprintf "%s:%d:%d: [%s] %s\n" file line col rule msg;
  if !annotate then
    Printf.printf "::error file=%s,line=%d,col=%d::[%s] %s\n" file line col
      rule msg

(* Local module aliases seen in the current file: "H" -> "Hoh". Filled
   per file before the rule walk; lookups chase alias-of-alias chains
   with a depth bound so a (pathological) cycle cannot hang the lint. *)
let module_aliases : (string, string) Hashtbl.t = Hashtbl.create 8

let resolve_mod m =
  let rec go depth m =
    if depth = 0 then m
    else
      match Hashtbl.find_opt module_aliases m with
      | Some m' when m' <> m -> go (depth - 1) m'
      | _ -> m
  in
  go 8 m

let rec last_mod = function
  | Longident.Lident m -> Some m
  | Longident.Ldot (_, m) -> Some m
  (* [F(X).v]: the functor head names the operation's module, not the
     argument — [H(X).apply] must still resolve through alias H. *)
  | Longident.Lapply (f, _) -> last_mod f

(* The module component right above the value, through local aliases:
   [Rr.Hoh.apply] -> "Hoh"; [module H = Hoh] makes [H.apply] -> "Hoh". *)
let parent_mod = function
  | Longident.Ldot (p, _) -> Option.map resolve_mod (last_mod p)
  | _ -> None

let lid_last = function
  | Longident.Lident s | Longident.Ldot (_, s) -> Some s
  | Longident.Lapply _ -> None

let is_txn_entry lid =
  match (parent_mod lid, lid_last lid) with
  | Some "Tm", Some ("atomic" | "atomic_stamped") -> true
  | Some "Hoh", Some ("apply" | "apply_stamped" | "run") -> true
  | _ -> false

let has_site args =
  List.exists
    (fun (lbl, _) ->
      match lbl with
      | Asttypes.Labelled "site" | Asttypes.Optional "site" -> true
      | _ -> false)
    args

let node_modules = [ "Lnode"; "Snode"; "Tnode" ]

(* Known non-tvar atomics, scoped per source file (by basename) so a
   generic name like [head] or [epoch] appearing on some future record in
   payload code is NOT silently exempt — each entry whitelists exactly the
   engine/metadata words that one module owns: node generation and
   publication state in the structures, the service layer's shard-gate
   words and statistics counters, the TM's version-lock words, and the
   reclaimers' epoch/hazard bookkeeping. A raw [Atomic] field anywhere
   else must either go through [Tm] or earn its own row here. *)
let node_meta = [ "gen"; "pstate" ]

let benign_atomic_fields =
  [ (* node records: generation counters and pool publication state *)
    ("lnode.ml", node_meta); ("snode.ml", node_meta);
    ("tnode.ml", node_meta);
    (* structures read the generation word for their reservation checks *)
    ("hoh_list.ml", [ "gen" ]); ("hoh_dlist.ml", [ "gen" ]);
    ("hoh_skiplist.ml", [ "gen" ]); ("hoh_hashset.ml", [ "gen" ]);
    ("hoh_bst_ext.ml", [ "gen" ]); ("hoh_bst_int.ml", [ "gen" ]);
    (* TM engine: tvar version-lock and cell words *)
    ("tm.ml", [ "lock"; "cell" ]);
    (* reclaimers: epoch announcements and backlog counters *)
    ( "epoch.ml",
      [ "global"; "announce"; "retired_total"; "backlog"; "max_backlog";
        "advances" ] );
    ("hazard.ml", [ "retired_total"; "backlog"; "max_backlog" ]);
    (* service shard gate and router statistics *)
    ( "service.ml",
      [ "word"; "readers"; "singles"; "batches"; "multis"; "multi_aborts";
        "recovered" ] );
    (* worker-pool queue state and stats *)
    ( "pool.ml",
      [ "head"; "tail"; "depth"; "max_depth"; "sleeping"; "stop"; "c_done";
        "lag_ns"; "svc_p99_ns"; "shed_low"; "shed_high"; "deferred";
        "drained_reqs"; "drained_batches" ] );
    (* hot-key cache epochs and counters *)
    ( "hotcache.ml",
      [ "epoch"; "hits"; "misses"; "invalidations"; "last_write" ] ) ]

let is_benign_field ~file fld =
  match List.assoc_opt (Filename.basename file) benign_atomic_fields with
  | Some fields -> List.mem fld fields
  | None -> false

open Parsetree

(* [free_ok]: inside a [Tm.defer] callback or a [~free:] closure.
   [binding_ok]: the enclosing top-level binding inspects
   [Tm.current_txn], i.e. it handles the not-in-a-transaction case. *)
type ctx = { free_ok : bool; binding_ok : bool }

let rec check_expr ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, args) ->
      if is_txn_entry lid && not (has_site args) then
        report ~loc:e.pexp_loc ~rule:"site-label"
          (Printf.sprintf "transaction entry %s without ~site"
             (String.concat "." (Longident.flatten lid)));
      (match (parent_mod lid, lid_last lid) with
      | Some "Atomic", Some fn when fn <> "make" -> (
          let first_plain =
            List.find_opt (fun (lbl, _) -> lbl = Asttypes.Nolabel) args
          in
          match first_plain with
          | Some (_, { pexp_desc = Pexp_field (_, { txt = fld; _ }); _ })
            when not
                   (match lid_last fld with
                   | Some f ->
                       is_benign_field
                         ~file:e.pexp_loc.Location.loc_start.Lexing.pos_fname
                         f
                   | None -> false) ->
              report ~loc:e.pexp_loc ~rule:"raw-atomic"
                (Printf.sprintf
                   "Atomic.%s on field %s: tvar payloads must go through Tm"
                   fn
                   (String.concat "." (Longident.flatten fld)))
          | _ -> ())
      | Some "Mempool", Some "free"
        when (not ctx.free_ok) && not ctx.binding_ok ->
          report ~loc:e.pexp_loc ~rule:"free-discipline"
            "Mempool.free outside Tm.defer / a ~free closure: the free \
             would race the window's revoke"
      | Some m, Some "make" when List.mem m node_modules ->
          report ~loc:e.pexp_loc ~rule:"pool-alloc"
            (Printf.sprintf
               "%s.make bypasses the pool; allocate with %s.alloc" m m)
      | _ -> ());
      let deferred =
        parent_mod lid = Some "Tm" && lid_last lid = Some "defer"
      in
      List.iter
        (fun (lbl, arg) ->
          let ctx =
            if deferred || lbl = Asttypes.Labelled "free" then
              { ctx with free_ok = true }
            else ctx
          in
          check_expr ctx arg)
        args
  | _ -> default_walk ctx e

and default_walk ctx e =
  (* Generic descent: visit every sub-expression with the current context.
     An [Ast_iterator] whose [expr] closes over a mutable ctx would lose
     the scoping on the way back up, hence the explicit recursion. *)
  let it =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ e -> check_expr ctx e);
    }
  in
  Ast_iterator.default_iterator.expr it e

(* Does this binding mention Tm.current_txn anywhere? *)
let mentions_current_txn vb =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = lid; _ }
            when lid_last lid = Some "current_txn" ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.value_binding it vb;
  !found

(* Pass 1: collect [module H = Path] aliases anywhere in the file (the
   table is keyed on the alias name only — a lint-grade approximation
   of scoping that errs toward reporting). *)
let collect_aliases str =
  Hashtbl.reset module_aliases;
  let note name lid =
    match last_mod lid with
    | Some target -> Hashtbl.replace module_aliases name target
    | None -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      module_binding =
        (fun self mb ->
          (match (mb.pmb_name.txt, mb.pmb_expr.pmod_desc) with
          | Some name, Pmod_ident { txt = lid; _ } -> note name lid
          | _ -> ());
          Ast_iterator.default_iterator.module_binding self mb);
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_letmodule
              ({ txt = Some name; _ }, { pmod_desc = Pmod_ident { txt = lid; _ }; _ }, _)
            ->
              note name lid
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str

let check_structure str =
  collect_aliases str;
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun _ vb ->
          let ctx =
            { free_ok = false; binding_ok = mentions_current_txn vb }
          in
          check_expr ctx vb.pvb_expr);
    }
  in
  it.structure it str

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

let () =
  let expect = ref (-1) in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--expect-violations" :: n :: rest ->
        expect := int_of_string n;
        parse_args rest
    | "--json" :: rest ->
        json := true;
        parse_args rest
    | f :: rest ->
        files := f :: !files;
        parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  (* Workflow annotations only for the real check, not fixture self-tests. *)
  annotate := Sys.getenv_opt "GITHUB_ACTIONS" <> None && !expect < 0;
  List.iter
    (fun f ->
      match parse_file f with
      | str -> check_structure str
      | exception e ->
          incr violations;
          Printf.eprintf "%s: [parse] %s\n" f (Printexc.to_string e))
    (List.rev !files);
  if !json then
    print_endline
      (Vdiag.to_json ~tool:"hohtx_lint" ~alias:"@lint"
         (List.rev !collected) []);
  if !expect >= 0 then begin
    if !violations <> !expect then begin
      Printf.eprintf
        "hohtx_lint self-test: expected %d violations, found %d\n" !expect
        !violations;
      exit 1
    end
  end
  else if !violations > 0 then begin
    Printf.eprintf "hohtx_lint: %d violation(s)\n" !violations;
    exit 1
  end
