(* hohtx_verify — typed, interprocedural, flow-sensitive typestate
   verifier for the hand-over-hand protocol.

   Consumes the compiler's .cmt typedtrees (so every name is a resolved
   [Path.t], not a guess) and checks the HOH protocol machine

     alloc → reserve → check → deref → hand-over → revoke → deferred-free

   on every path, including exception edges. See lib/verify for the
   analysis; DESIGN.md decision 14 for what is proved here vs checked
   dynamically by TxSan vs explored by DST.

   Usage:
     hohtx_verify [options] file.cmt ...
       --format text|github|json   diagnostic rendering (default: text,
                                   or github under $GITHUB_ACTIONS)
       --sarif FILE                also write SARIF 2.1.0 to FILE
       --expect FILE               self-test: compare diagnostics against
                                   expected "file.ml:LINE:rule-id" lines
       --expect-suppressions N     self-test: exactly N [@hohtx.trusted]
                                   uses must be seen
       --filter SUBSTR             only report diagnostics whose file
                                   path contains SUBSTR
       --quiet                     suppress the OK summary line

   Exit status: 0 clean (or expectations met), 1 violations (or
   expectation mismatch), 2 usage error. *)

module Vdiag = Verify.Vdiag
module Vsarif = Verify.Vsarif

let usage = "hohtx_verify [options] file.cmt ..."

let () =
  let format = ref (if Sys.getenv_opt "GITHUB_ACTIONS" <> None then "github" else "text") in
  let sarif = ref "" in
  let expect = ref "" in
  let expect_sups = ref (-1) in
  let filter = ref "" in
  let quiet = ref false in
  let files = ref [] in
  let spec =
    [
      ("--format", Arg.Symbol ([ "text"; "github"; "json" ], fun s -> format := s),
       " diagnostic output format");
      ("--sarif", Arg.Set_string sarif, "FILE write SARIF 2.1.0 report");
      ("--expect", Arg.Set_string expect,
       "FILE compare diagnostics against expected file:line:rule lines");
      ("--expect-suppressions", Arg.Set_int expect_sups,
       "N require exactly N [@hohtx.trusted] suppressions");
      ("--filter", Arg.Set_string filter,
       "SUBSTR only report diagnostics from matching files");
      ("--quiet", Arg.Set quiet, " suppress the OK summary line");
    ]
  in
  Arg.parse spec (fun f -> files := f :: !files) usage;
  let files = List.rev !files in
  if files = [] then begin
    prerr_endline "hohtx_verify: no .cmt files given";
    exit 2
  end;
  let diags, sups = Verify.run files in
  (* in --quiet --expect self-test mode only mismatches are interesting *)
  let print_diags = not (!quiet && !expect <> "") in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let diags =
    if !filter = "" then diags
    else List.filter (fun (d : Vdiag.t) -> contains d.Vdiag.file !filter) diags
  in
  (match !format with
  | "json" ->
      print_string (Vdiag.to_json ~tool:"hohtx_verify" ~alias:"@verify" diags sups);
      print_newline ()
  | "github" ->
      if print_diags then List.iter (Vdiag.pp_github stdout) diags;
      if diags = [] && not !quiet then
        Printf.printf "hohtx_verify: OK (%d files, %d suppressions)\n"
          (List.length files) (List.length sups)
  | _ ->
      if print_diags then
        List.iter (Vdiag.pp_text ~alias:"@verify" stdout) diags;
      if diags = [] && not !quiet then
        Printf.printf "hohtx_verify: OK (%d files, 0 diagnostics, %d \
                       [@hohtx.trusted] suppressions)\n"
          (List.length files) (List.length sups));
  List.iter
    (fun (s : Vdiag.suppression) ->
      if not !quiet && !format = "text" then
        Printf.printf "  trusted: %s:%d  (%s)\n" s.Vdiag.s_file s.Vdiag.s_line
          s.Vdiag.reason)
    sups;
  if !sarif <> "" then begin
    let oc = open_out !sarif in
    output_string oc (Vsarif.to_string diags sups);
    close_out oc
  end;
  let failures = ref [] in
  (if !expect <> "" then
     let expected = Vdiag.parse_expect_file !expect in
     failures := !failures @ Vdiag.check_expect expected diags);
  (if !expect_sups >= 0 && List.length sups <> !expect_sups then
     failures :=
       !failures
       @ [
           Printf.sprintf "expected %d suppressions, saw %d" !expect_sups
             (List.length sups);
         ]);
  if !failures <> [] then begin
    List.iter (fun f -> Printf.eprintf "hohtx_verify: %s\n" f) !failures;
    exit 1
  end;
  if !expect = "" && diags <> [] then exit 1
