(* Side-by-side demonstration of the reclamation strategies the paper
   compares: the same churn workload runs over the singly linked list with
   revocable reservations (immediate, precise), transactional hazard
   pointers (deferred, batched), reference counting, and the lock-free
   baselines (hazard pointers / leaky), and this program reports each
   strategy's memory behaviour: live nodes vs. set size, peak deferred
   backlog, and total leak.

   Run with: dune exec examples/reclamation_demo.exe *)

open Harness

let spec =
  Workload.spec ~key_bits:7 ~lookup_pct:10 ~threads:4 ~ops_per_thread:8_000 ()

let slist kind =
  Factories.make (Factories.Spec.v ~window:8 Factories.Spec.Slist kind)

let contenders =
  [
    slist (Structs.Mode.Rr_kind (module Rr.V));
    slist (Structs.Mode.Rr_kind (module Rr.Fa));
    slist Structs.Mode.Tmhp;
    slist Structs.Mode.Ebr;
    slist Structs.Mode.Ref;
    Factories.lf_list `Hp;
    Factories.lf_list `Leak;
  ]

let () =
  Tm.Thread.with_registered (fun _ ->
      Printf.printf "churn workload: %d threads x %d ops, %d-key range\n\n"
        spec.Workload.threads spec.Workload.ops_per_thread
        (Workload.key_range spec);
      Printf.printf "%-8s %10s %10s %12s %12s %10s\n" "impl" "ops/s" "size"
        "live nodes" "peak backlog" "leaked";
      List.iter
        (fun f ->
          let h = f.Factories.make () in
          let r = Driver.run ~verify:false spec h in
          let fmt = function Some v -> string_of_int v | None -> "-" in
          Printf.printf "%-8s %10.0f %10d %12s %12s %10s\n" r.Driver.impl
            r.Driver.throughput r.Driver.size_after
            (fmt r.Driver.pool_live)
            (fmt r.Driver.max_backlog)
            (fmt r.Driver.leaked))
        contenders;
      print_endline
        "\nReading the table: with revocable reservations (RR-*), live\n\
         nodes equal the set size the moment workers stop — reclamation is\n\
         immediate and precise. TMHP and LFHP defer frees (peak backlog\n\
         shows how far reclamation lagged; their lists drain only at a\n\
         scan). LFLeak never reclaims: 'leaked' counts unlinked nodes that\n\
         could never be returned to the allocator.")
