(* A task-priority index: producers publish tasks keyed by priority into an
   internal unbalanced BST, and workers claim work by probing priorities.
   Priorities arrive partially sorted (batch after batch of increasing
   deadlines), which degenerates an unbalanced tree into long chains —
   exactly the case where single-transaction (HTM-style) operations
   overflow and serialize while hand-over-hand transactions keep windows
   small (Sec. 5.4).

   The demo runs the same workload over the HTM baseline and over RR-XO
   hand-over-hand transactions and reports throughput, abort rates, and
   serial fallbacks.

   Run with: dune exec examples/priority_index.exe *)

let n_producers = 2
let n_claimers = 2
let tasks_per_producer = 4_000

let run_one name (t : Structs.Hoh_bst_int.t) =
  let t0 = Unix.gettimeofday () in
  let producers =
    List.init n_producers (fun d ->
        Domain.spawn (fun () ->
            Tm.Thread.with_registered (fun thread ->
                Tm.Stats.reset (Tm.Thread.stats ());
                (* batches of ascending priorities: adversarial for an
                   unbalanced tree *)
                for i = 1 to tasks_per_producer do
                  let priority = (i * 2) + d in
                  ignore (Structs.Hoh_bst_int.insert t ~thread priority)
                done;
                Tm.Stats.copy (Tm.Thread.stats ()))))
  in
  let claimers =
    List.init n_claimers (fun d ->
        Domain.spawn (fun () ->
            Tm.Thread.with_registered (fun thread ->
                Tm.Stats.reset (Tm.Thread.stats ());
                let claimed = ref 0 in
                let rng = ref (d + 3) in
                for _ = 1 to tasks_per_producer do
                  rng := (!rng * 1103515245) + 12345;
                  let probe =
                    1 + (!rng land 0x3FFFFFFF mod (2 * tasks_per_producer))
                  in
                  if Structs.Hoh_bst_int.remove t ~thread probe then
                    incr claimed
                done;
                (!claimed, Tm.Stats.copy (Tm.Thread.stats ())))))
  in
  let pstats = List.map Domain.join producers in
  let cresults = List.map Domain.join claimers in
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats = Tm.Stats.create () in
  List.iter (Tm.Stats.add stats) pstats;
  List.iter (fun (_, s) -> Tm.Stats.add stats s) cresults;
  let claimed = List.fold_left (fun a (c, _) -> a + c) 0 cresults in
  let total_ops = (n_producers + n_claimers) * tasks_per_producer in
  Printf.printf
    "%-18s %8.0f ops/s  depth %4d  size %5d  claimed %5d  aborts/attempt \
     %.3f  serial fallbacks %d\n"
    name
    (float_of_int total_ops /. elapsed)
    (Structs.Hoh_bst_int.depth t)
    (Structs.Hoh_bst_int.size t)
    claimed
    (float_of_int (Tm.Stats.total_aborts stats)
    /. float_of_int (max 1 (Tm.Stats.started stats)))
    (Tm.Stats.fallbacks stats);
  match Structs.Hoh_bst_int.check t with
  | Ok () -> ()
  | Error e -> failwith (name ^ ": " ^ e)

let () =
  Tm.Thread.with_registered (fun _ ->
      Printf.printf
        "priority index: %d producers + %d claimers, adversarially sorted \
         priorities\n\n"
        n_producers n_claimers;
      run_one "HTM (whole-op)"
        (Structs.Hoh_bst_int.create ~mode:Structs.Mode.Htm ());
      run_one "RR-XO (hand-over-hand)"
        (Structs.Hoh_bst_int.create
           ~mode:(Structs.Mode.Rr_kind (module Rr.Xo))
           ~window:16 ());
      print_endline "\npriority_index: OK")
